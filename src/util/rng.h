// Deterministic, explicitly-seeded random number generation. Experiments and
// randomized heuristics must reproduce bit-for-bit across runs, so nothing in
// the library touches global RNG state.
#ifndef GHD_UTIL_RNG_H_
#define GHD_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace ghd {

/// xoshiro256** seeded via splitmix64. Small, fast, and stable across
/// platforms (unlike std::mt19937 distributions).
class Rng {
 public:
  /// Seeds the generator; identical seeds give identical streams.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound); `bound` must be positive.
  int UniformInt(int bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int UniformRange(int lo, int hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int i = static_cast<int>(v->size()) - 1; i > 0; --i) {
      int j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace ghd

#endif  // GHD_UTIL_RNG_H_
