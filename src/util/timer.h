// Wall-clock timing and cooperative deadlines for anytime solvers.
#ifndef GHD_UTIL_TIMER_H_
#define GHD_UTIL_TIMER_H_

#include <chrono>

namespace ghd {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Deadline for branch-and-bound style solvers: the solver polls Expired()
/// periodically and returns its best-so-far answer when time runs out.
class Deadline {
 public:
  /// No limit.
  Deadline() = default;
  /// Limit of `seconds` from now; non-positive means no limit.
  explicit Deadline(double seconds) : limit_seconds_(seconds) {}

  bool Expired() const {
    return limit_seconds_ > 0 && timer_.ElapsedSeconds() >= limit_seconds_;
  }

 private:
  WallTimer timer_;
  double limit_seconds_ = 0;
};

}  // namespace ghd

#endif  // GHD_UTIL_TIMER_H_
