// Wall-clock timing. Cooperative deadlines/limits live in
// util/resource_governor.h (Budget), which every engine polls.
#ifndef GHD_UTIL_TIMER_H_
#define GHD_UTIL_TIMER_H_

#include <chrono>

namespace ghd {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ghd

#endif  // GHD_UTIL_TIMER_H_
