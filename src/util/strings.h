// Small string helpers used by parsers and report writers.
#ifndef GHD_UTIL_STRINGS_H_
#define GHD_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace ghd {

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on `sep`, trimming each field and dropping empties.
std::vector<std::string> SplitTrimmed(std::string_view s, char sep);

/// True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a non-negative integer; returns -1 on malformed input.
int ParseNonNegativeInt(std::string_view s);

}  // namespace ghd

#endif  // GHD_UTIL_STRINGS_H_
