#include "util/rational.h"

#include <numeric>

namespace ghd {
namespace {

int64_t CheckedNarrow(__int128 v) {
  GHD_CHECK(v <= INT64_MAX && v >= INT64_MIN);
  return static_cast<int64_t>(v);
}

}  // namespace

Rational::Rational(int64_t num, int64_t den) {
  GHD_CHECK(den != 0);
  if (den < 0) {
    num = -num;
    den = -den;
  }
  const int64_t g = std::gcd(num < 0 ? -num : num, den);
  num_ = g == 0 ? 0 : num / g;
  den_ = g == 0 ? 1 : den / g;
}

Rational Rational::operator+(const Rational& o) const {
  const __int128 num = static_cast<__int128>(num_) * o.den_ +
                       static_cast<__int128>(o.num_) * den_;
  const __int128 den = static_cast<__int128>(den_) * o.den_;
  // Reduce in 128 bits before narrowing so mid-sized operands stay legal.
  __int128 a = num < 0 ? -num : num;
  __int128 b = den;
  while (b != 0) {
    const __int128 t = a % b;
    a = b;
    b = t;
  }
  if (a == 0) return Rational(0);
  return Rational(CheckedNarrow(num / a), CheckedNarrow(den / a));
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  // Cross-reduce first to keep intermediates small.
  const Rational a(num_, o.den_ == 0 ? 1 : o.den_);
  const Rational b(o.num_, den_);
  const __int128 num = static_cast<__int128>(a.num_) * b.num_;
  const __int128 den = static_cast<__int128>(a.den_) * b.den_;
  return Rational(CheckedNarrow(num), CheckedNarrow(den));
}

Rational Rational::operator/(const Rational& o) const {
  GHD_CHECK(!o.IsZero());
  return *this * Rational(o.den_, o.num_);
}

bool Rational::operator<(const Rational& o) const {
  return static_cast<__int128>(num_) * o.den_ <
         static_cast<__int128>(o.num_) * den_;
}

std::string Rational::ToString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

}  // namespace ghd
