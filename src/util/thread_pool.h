// Shared-memory parallel search substrate: a work-stealing task pool with a
// fork-join API. All parallel solvers in this library (the width-k decider,
// the exact GHW branch and bound, the subset DP, the bench fan-out) run on
// this pool.
//
// Model:
//  * `ThreadPool(n)` owns n-1 worker threads; the caller thread is the n-th
//    executor (it helps run tasks while waiting on a `TaskGroup`).
//  * Each worker keeps its own deque; it pops from the back (LIFO, cache
//    locality for nested forks) and steals from the front of other deques
//    (FIFO, coarse-grained oldest work first).
//  * `TaskGroup` is the fork-join primitive: `Run` forks a task, `Wait`
//    blocks until every task of the group finished, executing queued tasks
//    while it waits, and rethrows the first exception any task raised.
//  * Single-thread fallback: with `num_threads <= 1` (or a null pool) `Run`
//    executes inline, immediately and in submission order — a deterministic
//    sequential run with zero synchronization, used as the baseline in
//    speedup measurements and by default everywhere (options default to 1).
#ifndef GHD_UTIL_THREAD_POOL_H_
#define GHD_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ghd {

class ThreadPool {
 public:
  /// Pool with `num_threads` total executors (the constructing thread counts
  /// as one, so `num_threads - 1` workers are spawned). Values <= 1 create a
  /// pool with no workers: everything runs inline on the caller.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executors (workers + caller).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// True when the pool has worker threads (i.e. forking can overlap work).
  bool parallel() const { return !workers_.empty(); }

  /// Resolves a requested thread count: <= 0 means "all hardware threads".
  static int EffectiveThreads(int requested);

 private:
  friend class TaskGroup;

  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  /// Enqueues a task. Called by TaskGroup::Run.
  void Submit(std::function<void()> fn);

  /// Runs one queued task if any is available; used by workers and by
  /// waiters helping out. Returns false when every deque was empty.
  bool RunOneTask();

  void WorkerLoop(int index);

  /// Pops from the back of the calling worker's own deque, or steals from
  /// the front of another; empty function when nothing was found.
  std::function<void()> NextTask(int self_index);

  std::vector<std::unique_ptr<Queue>> queues_;  // one per worker
  std::vector<std::thread> workers_;
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<int> next_queue_{0};
  std::atomic<bool> stop_{false};
  // Submitted-but-not-yet-popped tasks across all deques; feeds the
  // pool_queue_depth peak gauge (backpressure visibility for the live board).
  std::atomic<int> queued_{0};
};

/// Fork-join group of tasks on a pool (or inline when `pool` is null or has
/// no workers). Not reentrant: one thread forks and the same thread waits.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Forks `fn`. Inline (immediate, deterministic order) without workers.
  void Run(std::function<void()> fn);

  /// Blocks until all forked tasks completed, helping to drain the pool's
  /// queues. Rethrows the first exception thrown by any task of this group.
  void Wait();

 private:
  void RunAndTrack(std::function<void()>& fn);

  ThreadPool* pool_;
  std::atomic<int> pending_{0};
  std::mutex mu_;
  std::condition_variable done_cv_;
  std::exception_ptr error_;  // guarded by mu_
};

/// Chunked parallel loop: calls `fn(i)` for i in [begin, end). Blocks until
/// every index ran. Sequential (in order) when `pool` has no workers.
template <typename Fn>
void ParallelFor(ThreadPool* pool, int begin, int end, Fn fn, int grain = 1) {
  if (end <= begin) return;
  if (pool == nullptr || !pool->parallel()) {
    for (int i = begin; i < end; ++i) fn(i);
    return;
  }
  if (grain < 1) grain = 1;
  const int count = end - begin;
  // ~4 chunks per executor balances stealing against per-task overhead.
  const int target_chunks = 4 * pool->num_threads();
  int chunk = (count + target_chunks - 1) / target_chunks;
  if (chunk < grain) chunk = grain;
  TaskGroup group(pool);
  for (int lo = begin; lo < end; lo += chunk) {
    const int hi = lo + chunk < end ? lo + chunk : end;
    group.Run([fn, lo, hi] {
      for (int i = lo; i < hi; ++i) fn(i);
    });
  }
  group.Wait();
}

}  // namespace ghd

#endif  // GHD_UTIL_THREAD_POOL_H_
