#include "util/resource_governor.h"

#include <cstdlib>
#include <limits>

#include "obs/obs.h"

namespace ghd {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kTickBudget:
      return "tick-budget";
    case StopReason::kMemoryBudget:
      return "memory-budget";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kFaultInjected:
      return "fault-injected";
    case StopReason::kGuardCap:
      return "guard-cap";
  }
  return "unknown";
}

std::string Outcome::ToString() const {
  std::string s = complete ? "complete" : StopReasonName(stop_reason);
  s += " (" + std::to_string(ticks) + " ticks)";
  return s;
}

Budget::Budget(double deadline_seconds, long tick_budget, size_t memory_bytes) {
  SetDeadlineSeconds(deadline_seconds);
  SetTickBudget(tick_budget);
  SetMemoryBudget(memory_bytes);
}

void Budget::SetDeadlineSeconds(double seconds) {
  has_deadline_ = seconds > 0;
  if (has_deadline_) {
    deadline_seconds_ = seconds;
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
  } else {
    deadline_seconds_ = 0;
  }
}

void Budget::SetTickBudget(long ticks) {
  tick_budget_ = ticks > 0 ? ticks : 0;
}

void Budget::SetMemoryBudget(size_t bytes) { memory_budget_ = bytes; }

void Budget::InjectFailureAfter(long ticks) {
  inject_after_ = ticks > 0 ? ticks : 0;
}

void Budget::InjectFailureFromEnv() {
  const char* env = std::getenv("GHD_FAULT_TICKS");
  if (env == nullptr || *env == '\0') return;
  char* end = nullptr;
  const long ticks = std::strtol(env, &end, 10);
  if (end != env && ticks > 0) InjectFailureAfter(ticks);
}

void Budget::AttachParent(Budget* parent) { parent_ = parent; }

void Budget::Stop(StopReason reason) {
  int expected = static_cast<int>(StopReason::kNone);
  if (reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                      std::memory_order_relaxed)) {
    GHD_COUNT(kGovernorStops);
  }
}

bool Budget::Tick() {
  if (parent_ != nullptr) parent_->Tick();
  GHD_COUNT(kGovernorTicks);
  const long n = ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Exact integer limits first: fault injection fires at precisely the nth
  // tick so test sweeps are deterministic, and the tick budget is off by at
  // most the thread count under concurrency.
  if (inject_after_ > 0 && n >= inject_after_) {
    Stop(StopReason::kFaultInjected);
  } else if (tick_budget_ > 0 && n > tick_budget_) {
    Stop(StopReason::kTickBudget);
  } else if ((n & (kDeadlinePollPeriod - 1)) == 0 && has_deadline_ &&
             Clock::now() >= deadline_) {
    Stop(StopReason::kDeadline);
  }
  return !Stopped();
}

bool Budget::Charge(size_t bytes) {
  if (parent_ != nullptr) parent_->Charge(bytes);
  const size_t total = bytes_.fetch_add(bytes, std::memory_order_relaxed) +
                       bytes;
  GHD_GAUGE_MAX(kPeakBytesCharged, total);
  if (memory_budget_ > 0 && total > memory_budget_) {
    Stop(StopReason::kMemoryBudget);
  }
  return !Stopped();
}

void Budget::Cancel() { Stop(StopReason::kCancelled); }

bool Budget::Stopped() const {
  if (reason_.load(std::memory_order_relaxed) !=
      static_cast<int>(StopReason::kNone)) {
    return true;
  }
  return parent_ != nullptr && parent_->Stopped();
}

StopReason Budget::reason() const {
  const StopReason own =
      static_cast<StopReason>(reason_.load(std::memory_order_relaxed));
  if (own != StopReason::kNone) return own;
  return parent_ != nullptr ? parent_->reason() : StopReason::kNone;
}

double Budget::ElapsedSeconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

double Budget::RemainingSeconds() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  const double left =
      std::chrono::duration<double>(deadline_ - Clock::now()).count();
  return left > 0 ? left : 0;
}

namespace {
double ClampFraction(double f) { return f < 0 ? 0 : (f > 1 ? 1 : f); }
}  // namespace

double Budget::DeadlineFraction() const {
  if (!has_deadline_ || deadline_seconds_ <= 0) return -1;
  const double total = deadline_seconds_;
  const double used =
      total - std::chrono::duration<double>(deadline_ - Clock::now()).count();
  return ClampFraction(used / total);
}

double Budget::TickFraction() const {
  if (tick_budget_ <= 0) return -1;
  return ClampFraction(static_cast<double>(ticks_used()) /
                       static_cast<double>(tick_budget_));
}

double Budget::MemoryFraction() const {
  if (memory_budget_ == 0) return -1;
  return ClampFraction(static_cast<double>(bytes_charged()) /
                       static_cast<double>(memory_budget_));
}

Outcome Budget::MakeOutcome() const {
  Outcome outcome;
  outcome.stop_reason = reason();
  outcome.complete = outcome.stop_reason == StopReason::kNone;
  outcome.ticks = ticks_used();
  return outcome;
}

}  // namespace ghd
