#include "util/thread_pool.h"

#include <utility>

#include "obs/obs.h"
#include "util/check.h"

namespace ghd {
namespace {

// Identifies the pool (and worker slot) the current thread belongs to, so
// Submit can push to the local deque and Wait can help-run tasks.
thread_local ThreadPool* tls_pool = nullptr;
thread_local int tls_worker = -1;

}  // namespace

int ThreadPool::EffectiveThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  const int workers = num_threads - 1;
  if (workers <= 0) return;
  queues_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  idle_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Any still-queued task belongs to a TaskGroup whose Wait would never
  // return; destroying a pool with live groups is a caller bug.
  for (const auto& q : queues_) GHD_CHECK(q->tasks.empty());
}

void ThreadPool::Submit(std::function<void()> fn) {
  GHD_DCHECK(parallel());
  GHD_COUNT(kPoolSubmits);
  int target;
  if (tls_pool == this && tls_worker >= 0) {
    target = tls_worker;  // Local push: LIFO pop keeps forks cache-hot.
  } else {
    const unsigned n = static_cast<unsigned>(queues_.size());
    target = static_cast<int>(
        static_cast<unsigned>(
            next_queue_.fetch_add(1, std::memory_order_relaxed)) %
        n);
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(fn));
  }
  GHD_GAUGE_MAX(kPoolQueueDepth,
                queued_.fetch_add(1, std::memory_order_relaxed) + 1);
  idle_cv_.notify_one();
}

std::function<void()> ThreadPool::NextTask(int self_index) {
  // Own deque first, newest task (back).
  if (self_index >= 0) {
    Queue& own = *queues_[self_index];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      std::function<void()> fn = std::move(own.tasks.back());
      own.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      GHD_COUNT(kPoolLocalPops);
      return fn;
    }
  }
  // Steal the oldest task (front) from any other deque.
  const int n = static_cast<int>(queues_.size());
  const int start = self_index >= 0 ? self_index + 1 : 0;
  for (int d = 0; d < n; ++d) {
    const int i = (start + d) % n;
    if (i == self_index) continue;
    Queue& victim = *queues_[i];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      std::function<void()> fn = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      GHD_COUNT(kPoolSteals);
      return fn;
    }
  }
  return nullptr;
}

bool ThreadPool::RunOneTask() {
  const int self = tls_pool == this ? tls_worker : -1;
  std::function<void()> fn = NextTask(self);
  if (!fn) return false;
  fn();
  return true;
}

void ThreadPool::WorkerLoop(int index) {
  tls_pool = this;
  tls_worker = index;
  while (true) {
    std::function<void()> fn = NextTask(index);
    if (fn) {
      fn();
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mu_);
    if (stop_.load(std::memory_order_acquire)) break;
    // Re-check queues under the idle lock is not possible (per-queue locks),
    // so sleep briefly and rescan; Submit's notify cuts the latency.
    idle_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
  tls_pool = nullptr;
  tls_worker = -1;
}

void TaskGroup::RunAndTrack(std::function<void()>& fn) {
  try {
    fn();
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!error_) error_ = std::current_exception();
  }
  // Decrement and notify under mu_: Wait re-acquires mu_ after observing
  // pending_ == 0, so no notification can touch the condvar after a waiter
  // returned and destroyed the group.
  std::lock_guard<std::mutex> lock(mu_);
  pending_.fetch_sub(1, std::memory_order_acq_rel);
  done_cv_.notify_all();
}

void TaskGroup::Run(std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  if (pool_ == nullptr || !pool_->parallel()) {
    RunAndTrack(fn);  // Inline sequential fallback, deterministic order.
    return;
  }
  auto wrapped = std::make_shared<std::function<void()>>(std::move(fn));
  pool_->Submit([this, wrapped] { RunAndTrack(*wrapped); });
}

void TaskGroup::Wait() {
  while (pending_.load(std::memory_order_acquire) > 0) {
    // Help drain the pool: the waiter is an executor, not a bystander.
    if (pool_ != nullptr && pool_->parallel() && pool_->RunOneTask()) continue;
    // Queues are drained, so every remaining task of this group is claimed
    // and running on another executor; block until one completes. The
    // decrement and notification happen under mu_, so the predicated wait
    // cannot miss the last completion.
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }
  std::exception_ptr error;
  {
    // Also orders this thread after the final decrementer's critical section
    // (which notifies while holding mu_), making destruction safe.
    std::lock_guard<std::mutex> lock(mu_);
    std::swap(error, error_);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace ghd
