// Text table rendering for benchmark harnesses: every bench binary prints the
// rows/series of its experiment in an aligned table (and optionally CSV).
#ifndef GHD_UTIL_TABLE_H_
#define GHD_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace ghd {

/// Column-aligned text table with a header row.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; the number of cells must equal the number of headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string Cell(int v) { return std::to_string(v); }
  static std::string Cell(double v, int precision = 3);
  static std::string Cell(const std::string& v) { return v; }

  /// Writes the table with aligned columns.
  void Print(std::ostream& os) const;

  /// Writes the table as CSV.
  void PrintCsv(std::ostream& os) const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ghd

#endif  // GHD_UTIL_TABLE_H_
