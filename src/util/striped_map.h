// Mutex-striped concurrent hash map: N independent unordered_map shards, each
// behind its own mutex, shard chosen by key hash. This is the shared memo
// table of the parallel solvers — (component, connector) states in the
// width-k decider, bag -> exact-cover-size caches in the GHW engines — where
// writers only ever insert (no erase, no in-place mutation), so lookups can
// hand out stable pointers: unordered_map never moves elements on rehash.
#ifndef GHD_UTIL_STRIPED_MAP_H_
#define GHD_UTIL_STRIPED_MAP_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ghd {

/// Insert-only concurrent map. `Hash` must be consistent across threads.
/// Values are immutable once inserted; `Find` pointers stay valid for the
/// map's lifetime (elements are node-based and never erased).
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class StripedMap {
 public:
  /// `stripes` is rounded up to a power of two (default 64 keeps contention
  /// negligible for any plausible thread count).
  explicit StripedMap(int stripes = 64) {
    int n = 1;
    while (n < stripes) n <<= 1;
    shards_.reserve(n);
    for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  }

  /// Pointer to the value for `key`, or nullptr when absent. The pointer is
  /// stable and safe to read without holding the shard lock.
  const Value* Find(const Key& key) const {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    return it == shard.map.end() ? nullptr : &it->second;
  }

  /// Inserts (key, value) if absent. Returns the resident value — the given
  /// one on insertion, the previously inserted one when another thread won.
  const Value* Insert(const Key& key, Value value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.map.emplace(key, std::move(value));
    return &it->second;
  }

  /// Resident value for `key`, computing it with `fn()` under the shard lock
  /// when absent. `fn` must not touch this map (deadlock).
  template <typename Fn>
  const Value* FindOrCompute(const Key& key, Fn fn) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      it = shard.map.emplace(key, fn()).first;
    }
    return &it->second;
  }

  /// Visits every (key, value) pair, holding one stripe lock at a time.
  /// Visit order is unspecified. `fn` must not touch this map (deadlock);
  /// concurrent inserters may or may not be visited. Used by the rebind
  /// sweep of the incremental solver, which runs it single-threaded.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (const auto& [key, value] : shard->map) fn(key, value);
    }
  }

  /// Total element count (takes every stripe lock; for stats/tests).
  size_t Size() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total += shard->map.size();
    }
    return total;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Value, Hash> map;
  };

  Shard& ShardFor(const Key& key) const {
    const size_t h = Hash{}(key);
    // Shard on high-ish bits: the map's buckets already consume the low ones.
    return *shards_[(h >> 6) & (shards_.size() - 1)];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ghd

#endif  // GHD_UTIL_STRIPED_MAP_H_
