#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace ghd {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  GHD_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::PrintCsv(std::ostream& os) const {
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
}

}  // namespace ghd
