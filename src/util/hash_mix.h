// Shared hash mixing primitives. Every hot-path hasher in the library (the
// bitset hash, interned-id memo keys, the striped maps) funnels through the
// splitmix64 finalizer: full-avalanche in three multiply/xor rounds, so ids
// that differ in one low bit land in unrelated stripes and buckets. The old
// `h1 * 1000003 + h2` combiners kept the low bits of h2 nearly intact, which
// striped both the memo shards and the unordered_map buckets.
#ifndef GHD_UTIL_HASH_MIX_H_
#define GHD_UTIL_HASH_MIX_H_

#include <cstdint>

namespace ghd {

/// splitmix64 finalizer (Steele, Lea, Flood): bijective full-avalanche mix.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Order-dependent combiner for two 64-bit hashes; mixes after combining so
/// the result avalanches even when the inputs are small ids.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return SplitMix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

/// Packs two 32-bit ids into one word; the canonical key layout for
/// (component, connector) interned memo keys.
inline uint64_t PackIds(uint32_t hi, uint32_t lo) {
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

/// unordered_map/StripedMap hasher for interned 32-bit ids: identity hashing
/// would stripe the shards, so mix.
struct IdHash {
  size_t operator()(uint32_t id) const {
    return static_cast<size_t>(SplitMix64(id));
  }
};

}  // namespace ghd

#endif  // GHD_UTIL_HASH_MIX_H_
