#include "util/bitset.h"

#include <bit>

namespace ghd {

VertexSet VertexSet::Of(int universe_size, const std::vector<int>& elements) {
  VertexSet s(universe_size);
  for (int e : elements) s.Set(e);
  return s;
}

VertexSet VertexSet::Full(int universe_size) {
  VertexSet s(universe_size);
  for (int i = 0; i < universe_size; ++i) s.Set(i);
  return s;
}

int VertexSet::Count() const {
  int c = 0;
  for (uint64_t w : words_) c += std::popcount(w);
  return c;
}

bool VertexSet::Empty() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

int VertexSet::First() const {
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return static_cast<int>(w * 64) + __builtin_ctzll(words_[w]);
    }
  }
  return -1;
}

int VertexSet::Next(int i) const {
  ++i;
  if (i >= size_) return -1;
  size_t w = static_cast<size_t>(i) >> 6;
  uint64_t bits = words_[w] >> (i & 63);
  if (bits != 0) return i + __builtin_ctzll(bits);
  for (++w; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return static_cast<int>(w * 64) + __builtin_ctzll(words_[w]);
    }
  }
  return -1;
}

std::vector<int> VertexSet::ToVector() const {
  std::vector<int> out;
  out.reserve(Count());
  ForEach([&](int i) { out.push_back(i); });
  return out;
}

VertexSet& VertexSet::operator|=(const VertexSet& o) {
  GHD_DCHECK(size_ == o.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  InvalidateHash();
  return *this;
}

VertexSet& VertexSet::operator&=(const VertexSet& o) {
  GHD_DCHECK(size_ == o.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  InvalidateHash();
  return *this;
}

VertexSet& VertexSet::operator-=(const VertexSet& o) {
  GHD_DCHECK(size_ == o.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
  InvalidateHash();
  return *this;
}

bool VertexSet::operator<(const VertexSet& o) const {
  if (size_ != o.size_) return size_ < o.size_;
  for (size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != o.words_[i]) return words_[i] < o.words_[i];
  }
  return false;
}

bool VertexSet::Intersects(const VertexSet& o) const {
  GHD_DCHECK(size_ == o.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & o.words_[i]) != 0) return true;
  }
  return false;
}

bool VertexSet::IsSubsetOf(const VertexSet& o) const {
  GHD_DCHECK(size_ == o.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~o.words_[i]) != 0) return false;
  }
  return true;
}

int VertexSet::IntersectCount(const VertexSet& o) const {
  GHD_DCHECK(size_ == o.size_);
  int c = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    c += std::popcount(words_[i] & o.words_[i]);
  }
  return c;
}

uint64_t VertexSet::Hash() const {
  const uint64_t cached = hash_cache_.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  // FNV-1a over the words plus the universe size.
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<uint64_t>(size_));
  for (uint64_t w : words_) mix(w);
  if (h == 0) h = 0x9e3779b97f4a7c15ull;  // 0 is the "not computed" sentinel.
  hash_cache_.store(h, std::memory_order_relaxed);
  return h;
}

std::string VertexSet::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEach([&](int i) {
    if (!first) out += ", ";
    out += std::to_string(i);
    first = false;
  });
  out += "}";
  return out;
}

}  // namespace ghd
