#include "util/bitset.h"

#include <bit>

namespace ghd {

VertexSet VertexSet::Of(int universe_size, const std::vector<int>& elements) {
  VertexSet s(universe_size);
  for (int e : elements) s.Set(e);
  return s;
}

VertexSet VertexSet::Full(int universe_size) {
  VertexSet s(universe_size);
  uint64_t* w = s.words();
  for (int i = 0; i < s.num_words_; ++i) w[i] = ~uint64_t{0};
  if (universe_size & 63) {
    w[s.num_words_ - 1] = (uint64_t{1} << (universe_size & 63)) - 1;
  }
  return s;
}

VertexSet VertexSet::FromWord(int universe_size, uint64_t word0) {
  VertexSet s(universe_size);
  if (universe_size < 64) {
    GHD_CHECK((word0 >> universe_size) == 0);
  }
  if (s.num_words_ > 0) s.words()[0] = word0;
  GHD_CHECK(s.num_words_ > 0 || word0 == 0);
  return s;
}

VertexSet VertexSet::FromWords(int universe_size, const uint64_t* words) {
  VertexSet s(universe_size);
  if (s.num_words_ > 0) {
    std::memcpy(s.words(), words, sizeof(uint64_t) * s.num_words_);
    if (universe_size & 63) {
      GHD_DCHECK((words[s.num_words_ - 1] >>
                  (universe_size & 63)) == 0);
    }
  }
  return s;
}

int VertexSet::Count() const {
  const uint64_t* w = words();
  int c = 0;
  for (int i = 0; i < num_words_; ++i) c += std::popcount(w[i]);
  return c;
}

bool VertexSet::Empty() const {
  const uint64_t* w = words();
  for (int i = 0; i < num_words_; ++i) {
    if (w[i] != 0) return false;
  }
  return true;
}

int VertexSet::First() const {
  const uint64_t* w = words();
  for (int i = 0; i < num_words_; ++i) {
    if (w[i] != 0) return i * 64 + __builtin_ctzll(w[i]);
  }
  return -1;
}

int VertexSet::Next(int i) const {
  ++i;
  if (i >= size_) return -1;
  const uint64_t* words_ptr = words();
  int w = i >> 6;
  uint64_t bits = words_ptr[w] >> (i & 63);
  if (bits != 0) return i + __builtin_ctzll(bits);
  for (++w; w < num_words_; ++w) {
    if (words_ptr[w] != 0) return w * 64 + __builtin_ctzll(words_ptr[w]);
  }
  return -1;
}

std::vector<int> VertexSet::ToVector() const {
  std::vector<int> out;
  out.reserve(Count());
  ForEach([&](int i) { out.push_back(i); });
  return out;
}

VertexSet& VertexSet::operator|=(const VertexSet& o) {
  GHD_DCHECK(size_ == o.size_);
  uint64_t* a = words();
  const uint64_t* b = o.words();
  for (int i = 0; i < num_words_; ++i) a[i] |= b[i];
  return *this;
}

VertexSet& VertexSet::operator&=(const VertexSet& o) {
  GHD_DCHECK(size_ == o.size_);
  uint64_t* a = words();
  const uint64_t* b = o.words();
  for (int i = 0; i < num_words_; ++i) a[i] &= b[i];
  return *this;
}

VertexSet& VertexSet::operator-=(const VertexSet& o) {
  GHD_DCHECK(size_ == o.size_);
  uint64_t* a = words();
  const uint64_t* b = o.words();
  for (int i = 0; i < num_words_; ++i) a[i] &= ~b[i];
  return *this;
}

bool VertexSet::operator<(const VertexSet& o) const {
  if (size_ != o.size_) return size_ < o.size_;
  const uint64_t* a = words();
  const uint64_t* b = o.words();
  for (int i = num_words_; i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return false;
}

bool VertexSet::Intersects(const VertexSet& o) const {
  GHD_DCHECK(size_ == o.size_);
  const uint64_t* a = words();
  const uint64_t* b = o.words();
  for (int i = 0; i < num_words_; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

bool VertexSet::IsSubsetOf(const VertexSet& o) const {
  GHD_DCHECK(size_ == o.size_);
  const uint64_t* a = words();
  const uint64_t* b = o.words();
  for (int i = 0; i < num_words_; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

int VertexSet::IntersectCount(const VertexSet& o) const {
  GHD_DCHECK(size_ == o.size_);
  const uint64_t* a = words();
  const uint64_t* b = o.words();
  int c = 0;
  for (int i = 0; i < num_words_; ++i) c += std::popcount(a[i] & b[i]);
  return c;
}

uint64_t VertexSet::Hash() const {
  // FNV-1a over the words plus the universe size, splitmix64-finalized so
  // the low bits avalanche (they feed both map buckets and shard selection).
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<uint64_t>(size_));
  const uint64_t* w = words();
  for (int i = 0; i < num_words_; ++i) mix(w[i]);
  return SplitMix64(h);
}

std::string VertexSet::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEach([&](int i) {
    if (!first) out += ", ";
    out += std::to_string(i);
    first = false;
  });
  out += "}";
  return out;
}

}  // namespace ghd
