// VertexSet: a dynamic bitset sized at construction. It is the workhorse set
// representation for vertices and edge ids across all decomposition solvers —
// intersection-heavy algorithms (set cover, component splitting, elimination)
// run on whole 64-bit words.
#ifndef GHD_UTIL_BITSET_H_
#define GHD_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"

namespace ghd {

/// Fixed-universe dynamic bitset. All binary operations require both operands
/// to have the same universe size.
class VertexSet {
 public:
  /// Empty set over an empty universe.
  VertexSet() = default;
  /// Empty set over a universe of `universe_size` elements {0, ..., n-1}.
  explicit VertexSet(int universe_size)
      : size_(universe_size), words_((universe_size + 63) / 64, 0) {
    GHD_CHECK(universe_size >= 0);
  }

  /// Builds a set over `universe_size` containing exactly `elements`.
  static VertexSet Of(int universe_size, const std::vector<int>& elements);
  /// Full set {0, ..., universe_size-1}.
  static VertexSet Full(int universe_size);

  int universe_size() const { return size_; }

  bool Test(int i) const {
    GHD_DCHECK(i >= 0 && i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void Set(int i) {
    GHD_DCHECK(i >= 0 && i < size_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }
  void Reset(int i) {
    GHD_DCHECK(i >= 0 && i < size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  void Clear() {
    for (auto& w : words_) w = 0;
  }

  /// Number of elements in the set.
  int Count() const;
  bool Empty() const;
  bool Any() const { return !Empty(); }

  /// Index of the lowest element, or -1 when empty.
  int First() const;
  /// Index of the lowest element > i, or -1 when none.
  int Next(int i) const;

  /// Element list in increasing order.
  std::vector<int> ToVector() const;

  VertexSet& operator|=(const VertexSet& o);
  VertexSet& operator&=(const VertexSet& o);
  /// Set difference: removes all elements of `o`.
  VertexSet& operator-=(const VertexSet& o);

  friend VertexSet operator|(VertexSet a, const VertexSet& b) { return a |= b; }
  friend VertexSet operator&(VertexSet a, const VertexSet& b) { return a &= b; }
  friend VertexSet operator-(VertexSet a, const VertexSet& b) { return a -= b; }

  bool operator==(const VertexSet& o) const {
    return size_ == o.size_ && words_ == o.words_;
  }
  bool operator!=(const VertexSet& o) const { return !(*this == o); }
  /// Lexicographic order on words; usable as a map key.
  bool operator<(const VertexSet& o) const;

  bool Intersects(const VertexSet& o) const;
  bool IsSubsetOf(const VertexSet& o) const;
  /// |*this & o| without materializing the intersection.
  int IntersectCount(const VertexSet& o) const;

  /// 64-bit hash usable for unordered containers.
  uint64_t Hash() const;

  /// Renders "{a, b, c}" for debugging.
  std::string ToString() const;

  /// Calls fn(i) for each element i in increasing order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        int i = static_cast<int>(w * 64) + __builtin_ctzll(bits);
        fn(i);
        bits &= bits - 1;
      }
    }
  }

 private:
  int size_ = 0;
  std::vector<uint64_t> words_;
};

/// std::unordered_map-compatible hasher.
struct VertexSetHash {
  size_t operator()(const VertexSet& s) const {
    return static_cast<size_t>(s.Hash());
  }
};

}  // namespace ghd

#endif  // GHD_UTIL_BITSET_H_
