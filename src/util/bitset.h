// VertexSet: a fixed-universe bitset sized at construction. It is the
// workhorse set representation for vertices and edge ids across all
// decomposition solvers — intersection-heavy algorithms (set cover, component
// splitting, elimination) run on whole 64-bit words.
//
// Representation: small-set optimized. Universes of up to 128 elements
// (kInlineWords * 64) live entirely inside the object — two words, no heap —
// which covers every vertex/edge universe of the benchmark families and the
// tractable-variant instances the engines target. Larger universes fall back
// to one heap array. Copying an inline set is a 24-byte memcpy; the solvers
// copy sets on almost every inner-loop step (bag construction, component
// splitting, guard unions), so this is the single most load-bearing layout
// decision in the library.
//
// There is deliberately no cached hash in the value: a cache word would grow
// the object, turn trivial copies into cache-maintenance, and (as an atomic)
// make them non-memcpy-able. Call sites that hash the same set repeatedly go
// through SetInterner (util/set_interner.h), which stores the hash next to
// the canonical copy once and hands out 32-bit ids — integer keys downstream.
#ifndef GHD_UTIL_BITSET_H_
#define GHD_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "util/check.h"
#include "util/hash_mix.h"

namespace ghd {

/// Fixed-universe bitset. All binary operations require both operands to
/// have the same universe size.
class VertexSet {
 public:
  /// Universes at most this large are stored inline (no heap allocation).
  static constexpr int kInlineCapacity = 128;

  /// Empty set over an empty universe.
  VertexSet() = default;
  /// Empty set over a universe of `universe_size` elements {0, ..., n-1}.
  explicit VertexSet(int universe_size)
      : size_(universe_size), num_words_((universe_size + 63) / 64) {
    GHD_CHECK(universe_size >= 0);
    if (is_inline()) {
      GHD_COUNT(kBitsetInlineSets);
      inline_[0] = 0;
      inline_[1] = 0;
    } else {
      GHD_COUNT(kBitsetHeapSets);
      heap_ = new uint64_t[num_words_]();
    }
  }

  VertexSet(const VertexSet& o) : size_(o.size_), num_words_(o.num_words_) {
    if (is_inline()) {
      inline_[0] = o.inline_[0];
      inline_[1] = o.inline_[1];
    } else {
      heap_ = new uint64_t[num_words_];
      std::memcpy(heap_, o.heap_, sizeof(uint64_t) * num_words_);
    }
  }
  VertexSet(VertexSet&& o) noexcept : size_(o.size_), num_words_(o.num_words_) {
    if (is_inline()) {
      inline_[0] = o.inline_[0];
      inline_[1] = o.inline_[1];
    } else {
      heap_ = o.heap_;
      o.size_ = 0;
      o.num_words_ = 0;
    }
  }
  VertexSet& operator=(const VertexSet& o) {
    if (this == &o) return *this;
    // Heap-to-heap with matching word count reuses the allocation: the
    // assignment-in-a-loop pattern of the search engines never reallocates.
    if (!is_inline() && !o.is_inline() && num_words_ == o.num_words_) {
      size_ = o.size_;
      std::memcpy(heap_, o.heap_, sizeof(uint64_t) * num_words_);
      return *this;
    }
    if (!is_inline()) delete[] heap_;
    size_ = o.size_;
    num_words_ = o.num_words_;
    if (is_inline()) {
      inline_[0] = o.inline_[0];
      inline_[1] = o.inline_[1];
    } else {
      heap_ = new uint64_t[num_words_];
      std::memcpy(heap_, o.heap_, sizeof(uint64_t) * num_words_);
    }
    return *this;
  }
  VertexSet& operator=(VertexSet&& o) noexcept {
    if (this == &o) return *this;
    if (!is_inline()) delete[] heap_;
    size_ = o.size_;
    num_words_ = o.num_words_;
    if (is_inline()) {
      inline_[0] = o.inline_[0];
      inline_[1] = o.inline_[1];
    } else {
      heap_ = o.heap_;
      o.size_ = 0;
      o.num_words_ = 0;
    }
    return *this;
  }
  ~VertexSet() {
    if (!is_inline()) delete[] heap_;
  }

  /// Builds a set over `universe_size` containing exactly `elements`.
  static VertexSet Of(int universe_size, const std::vector<int>& elements);
  /// Full set {0, ..., universe_size-1}.
  static VertexSet Full(int universe_size);
  /// Set whose first (at most 64) elements come from the bits of `word0`.
  /// Bits at or above `universe_size` must be zero (checked).
  static VertexSet FromWord(int universe_size, uint64_t word0);
  /// Set over `universe_size` whose words are copied from `words`
  /// ((universe_size + 63) / 64 of them). Bits at or above `universe_size`
  /// must be zero — rows of a kernels::BitMatrix satisfy this by
  /// construction. The word-array twin of FromWord for the flat CSR kernels.
  static VertexSet FromWords(int universe_size, const uint64_t* words);

  int universe_size() const { return size_; }

  bool Test(int i) const {
    GHD_DCHECK(i >= 0 && i < size_);
    return (words()[i >> 6] >> (i & 63)) & 1;
  }
  void Set(int i) {
    GHD_DCHECK(i >= 0 && i < size_);
    words()[i >> 6] |= uint64_t{1} << (i & 63);
  }
  void Reset(int i) {
    GHD_DCHECK(i >= 0 && i < size_);
    words()[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  void Clear() {
    uint64_t* w = words();
    for (int i = 0; i < num_words_; ++i) w[i] = 0;
  }

  /// Number of elements in the set.
  int Count() const;
  bool Empty() const;
  bool Any() const { return !Empty(); }

  /// Index of the lowest element, or -1 when empty.
  int First() const;
  /// Index of the lowest element > i, or -1 when none.
  int Next(int i) const;

  /// Element list in increasing order.
  std::vector<int> ToVector() const;

  VertexSet& operator|=(const VertexSet& o);
  VertexSet& operator&=(const VertexSet& o);
  /// Set difference: removes all elements of `o`.
  VertexSet& operator-=(const VertexSet& o);

  friend VertexSet operator|(VertexSet a, const VertexSet& b) { return a |= b; }
  friend VertexSet operator&(VertexSet a, const VertexSet& b) { return a &= b; }
  friend VertexSet operator-(VertexSet a, const VertexSet& b) { return a -= b; }

  bool operator==(const VertexSet& o) const {
    if (size_ != o.size_) return false;
    const uint64_t* a = words();
    const uint64_t* b = o.words();
    for (int i = 0; i < num_words_; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }
  bool operator!=(const VertexSet& o) const { return !(*this == o); }
  /// Lexicographic order on words; usable as a map key.
  bool operator<(const VertexSet& o) const;

  bool Intersects(const VertexSet& o) const;
  bool IsSubsetOf(const VertexSet& o) const;
  /// |*this & o| without materializing the intersection.
  int IntersectCount(const VertexSet& o) const;

  /// 64-bit hash usable for unordered containers: FNV-1a over the words and
  /// universe size, splitmix64-finalized. Computed on every call — sets that
  /// are hashed repeatedly belong in a SetInterner, whose table caches the
  /// hash next to the canonical copy.
  uint64_t Hash() const;

  /// Renders "{a, b, c}" for debugging.
  std::string ToString() const;

  /// Raw word view for the flat CSR/SIMD kernels (hypergraph/kernels.h):
  /// (universe_size + 63) / 64 little-endian 64-bit words, unused high bits
  /// zero. The pointer is into this object — it is invalidated by assignment
  /// and destruction, exactly like a std::vector::data() view.
  const uint64_t* word_data() const { return words(); }
  int word_count() const { return num_words_; }

  /// Calls fn(i) for each element i in increasing order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    const uint64_t* w = words();
    for (int i = 0; i < num_words_; ++i) {
      uint64_t bits = w[i];
      while (bits != 0) {
        fn(i * 64 + __builtin_ctzll(bits));
        bits &= bits - 1;
      }
    }
  }

  /// Batched construction: accumulates unions and single bits, then releases
  /// the finished set with one move. Historically this existed so that build
  /// loops paid one hash-cache invalidation instead of one per Set(); the
  /// cache has since moved out of the value entirely, and the builder remains
  /// as the idiomatic way to spell "construct by accumulation" on hot paths
  /// like Hypergraph::UnionOfEdges. Defined below the class.
  class Builder;

 private:
  static constexpr int kInlineWords = kInlineCapacity / 64;

  bool is_inline() const { return num_words_ <= kInlineWords; }
  uint64_t* words() { return is_inline() ? inline_ : heap_; }
  const uint64_t* words() const { return is_inline() ? inline_ : heap_; }

  int32_t size_ = 0;
  int32_t num_words_ = 0;
  union {
    uint64_t inline_[kInlineWords] = {0, 0};
    uint64_t* heap_;
  };
};

class VertexSet::Builder {
 public:
  explicit Builder(int universe_size) : set_(universe_size) {}
  Builder& Add(int i) {
    set_.Set(i);
    return *this;
  }
  /// Unions `o` in, whole words at a time.
  Builder& AddAll(const VertexSet& o) {
    set_ |= o;
    return *this;
  }
  VertexSet Build() && { return std::move(set_); }

 private:
  VertexSet set_;
};

/// std::unordered_map-compatible hasher.
struct VertexSetHash {
  size_t operator()(const VertexSet& s) const {
    return static_cast<size_t>(s.Hash());
  }
};

}  // namespace ghd

#endif  // GHD_UTIL_BITSET_H_
