// VertexSet: a dynamic bitset sized at construction. It is the workhorse set
// representation for vertices and edge ids across all decomposition solvers —
// intersection-heavy algorithms (set cover, component splitting, elimination)
// run on whole 64-bit words.
#ifndef GHD_UTIL_BITSET_H_
#define GHD_UTIL_BITSET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/check.h"

namespace ghd {

/// Fixed-universe dynamic bitset. All binary operations require both operands
/// to have the same universe size.
class VertexSet {
 public:
  /// Empty set over an empty universe.
  VertexSet() = default;
  /// Empty set over a universe of `universe_size` elements {0, ..., n-1}.
  explicit VertexSet(int universe_size)
      : size_(universe_size), words_((universe_size + 63) / 64, 0) {
    GHD_CHECK(universe_size >= 0);
  }

  // The cached hash is an atomic, so the special members are spelled out
  // (relaxed copies; concurrent readers at worst recompute the same value).
  VertexSet(const VertexSet& o)
      : size_(o.size_),
        words_(o.words_),
        hash_cache_(o.hash_cache_.load(std::memory_order_relaxed)) {}
  VertexSet(VertexSet&& o) noexcept
      : size_(o.size_),
        words_(std::move(o.words_)),
        hash_cache_(o.hash_cache_.load(std::memory_order_relaxed)) {}
  VertexSet& operator=(const VertexSet& o) {
    size_ = o.size_;
    words_ = o.words_;
    hash_cache_.store(o.hash_cache_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    return *this;
  }
  VertexSet& operator=(VertexSet&& o) noexcept {
    size_ = o.size_;
    words_ = std::move(o.words_);
    hash_cache_.store(o.hash_cache_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    return *this;
  }

  /// Builds a set over `universe_size` containing exactly `elements`.
  static VertexSet Of(int universe_size, const std::vector<int>& elements);
  /// Full set {0, ..., universe_size-1}.
  static VertexSet Full(int universe_size);

  int universe_size() const { return size_; }

  bool Test(int i) const {
    GHD_DCHECK(i >= 0 && i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void Set(int i) {
    GHD_DCHECK(i >= 0 && i < size_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
    InvalidateHash();
  }
  void Reset(int i) {
    GHD_DCHECK(i >= 0 && i < size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
    InvalidateHash();
  }
  void Clear() {
    for (auto& w : words_) w = 0;
    InvalidateHash();
  }

  /// Number of elements in the set.
  int Count() const;
  bool Empty() const;
  bool Any() const { return !Empty(); }

  /// Index of the lowest element, or -1 when empty.
  int First() const;
  /// Index of the lowest element > i, or -1 when none.
  int Next(int i) const;

  /// Element list in increasing order.
  std::vector<int> ToVector() const;

  VertexSet& operator|=(const VertexSet& o);
  VertexSet& operator&=(const VertexSet& o);
  /// Set difference: removes all elements of `o`.
  VertexSet& operator-=(const VertexSet& o);

  friend VertexSet operator|(VertexSet a, const VertexSet& b) { return a |= b; }
  friend VertexSet operator&(VertexSet a, const VertexSet& b) { return a &= b; }
  friend VertexSet operator-(VertexSet a, const VertexSet& b) { return a -= b; }

  bool operator==(const VertexSet& o) const {
    return size_ == o.size_ && words_ == o.words_;
  }
  bool operator!=(const VertexSet& o) const { return !(*this == o); }
  /// Lexicographic order on words; usable as a map key.
  bool operator<(const VertexSet& o) const;

  bool Intersects(const VertexSet& o) const;
  bool IsSubsetOf(const VertexSet& o) const;
  /// |*this & o| without materializing the intersection.
  int IntersectCount(const VertexSet& o) const;

  /// 64-bit hash usable for unordered containers. Memoized: the first call
  /// after a mutation rehashes the words, later calls return the cached
  /// value — memo-table hot paths hash the same keys many times.
  uint64_t Hash() const;

  /// Renders "{a, b, c}" for debugging.
  std::string ToString() const;

  /// Calls fn(i) for each element i in increasing order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        int i = static_cast<int>(w * 64) + __builtin_ctzll(bits);
        fn(i);
        bits &= bits - 1;
      }
    }
  }

 private:
  void InvalidateHash() { hash_cache_.store(0, std::memory_order_relaxed); }

  int size_ = 0;
  std::vector<uint64_t> words_;
  /// Cached Hash() result; 0 means "not computed" (Hash never returns 0).
  /// Atomic so concurrent Hash() calls on a shared immutable set are clean
  /// under TSan; all accesses are relaxed (the value is self-validating).
  mutable std::atomic<uint64_t> hash_cache_{0};
};

/// std::unordered_map-compatible hasher.
struct VertexSetHash {
  size_t operator()(const VertexSet& s) const {
    return static_cast<size_t>(s.Hash());
  }
};

}  // namespace ghd

#endif  // GHD_UTIL_BITSET_H_
