// SetInterner: hash-consing for VertexSets. Intern() maps a set to a dense
// 32-bit id; equal sets (same universe, same elements) always receive the
// same id, so downstream keys — the width-k decider's (component, connector)
// memo states, the GHW engines' bag -> cover-size caches — become integer
// pairs: equality is an integer compare, hashing is one splitmix64 round, and
// a memoized StateKey shrinks from two bitsets to 8 bytes.
//
// This is also where the bitset hash cache went when it moved out of
// VertexSet (util/bitset.h): the interner computes each canonical set's hash
// exactly once, on first insertion, and serves it from HashOf() thereafter.
//
// Concurrency: the table is sharded by set hash, each shard behind its own
// mutex, so the parallel decider's workers intern mostly without contention.
// Ids are stable and never recycled; Resolve() returns a reference to the
// canonical copy that stays valid for the interner's lifetime (storage is
// node-stable, nothing is ever erased).
//
// Lifetime invariant: an interned id is a borrowed name, meaningful only
// while the interner that issued it is alive. Memo tables keyed by ids must
// therefore never outlive their interner — in the engines both live in the
// same per-search struct and die together. Never mix ids from two interners.
#ifndef GHD_UTIL_SET_INTERNER_H_
#define GHD_UTIL_SET_INTERNER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/bitset.h"

namespace ghd {

class SetInterner {
 public:
  /// `shards` is rounded up to a power of two (capped at 256). The default
  /// keeps contention negligible for any plausible worker count while the id
  /// space still allows ~2^27 sets per shard.
  explicit SetInterner(int shards = 16);

  SetInterner(const SetInterner&) = delete;
  SetInterner& operator=(const SetInterner&) = delete;

  /// Canonical id for `s`; inserts a canonical copy on first sight. When
  /// `inserted` is non-null it reports whether this call created the entry
  /// (callers use it to charge the copy's bytes against a memory budget).
  uint32_t Intern(const VertexSet& s, bool* inserted = nullptr);

  /// The canonical set for an id issued by this interner. The reference is
  /// stable for the interner's lifetime; ids from other interners are
  /// undefined behavior (bounds-checked in debug builds only).
  const VertexSet& Resolve(uint32_t id) const;

  /// The canonical set's hash, computed once at interning time.
  uint64_t HashOf(uint32_t id) const;

  /// Total interned sets (takes every shard lock; for stats/tests).
  size_t Size() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    // The map nodes ARE the canonical storage (node-based, stable, never
    // erased); by_index maps local id -> (canonical set, its hash) for
    // Resolve/HashOf. Construction allocates nothing; each new set costs
    // exactly one map node.
    std::unordered_map<VertexSet, uint32_t, VertexSetHash> ids;
    std::vector<std::pair<const VertexSet*, uint64_t>> by_index;
  };

  // Id layout: local index << shard_bits | shard.
  std::vector<std::unique_ptr<Shard>> shards_;
  int shard_bits_;
  uint32_t shard_mask_;
};

}  // namespace ghd

#endif  // GHD_UTIL_SET_INTERNER_H_
