#include "util/set_interner.h"

#include "obs/obs.h"
#include "util/check.h"

namespace ghd {

SetInterner::SetInterner(int shards) {
  int n = 1;
  shard_bits_ = 0;
  while (n < shards && n < 256) {
    n <<= 1;
    ++shard_bits_;
  }
  shard_mask_ = static_cast<uint32_t>(n - 1);
  shards_.reserve(n);
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

uint32_t SetInterner::Intern(const VertexSet& s, bool* inserted) {
  const uint64_t h = s.Hash();
  Shard& shard = *shards_[h & shard_mask_];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, is_new] = shard.ids.try_emplace(s, 0);
  if (!is_new) {
    GHD_COUNT(kInternerHits);
    if (inserted != nullptr) *inserted = false;
    return (it->second << shard_bits_) | static_cast<uint32_t>(h & shard_mask_);
  }
  GHD_COUNT(kInternerMisses);
  GHD_HISTO(kInternedSetWords, (s.universe_size() + 63) / 64);
  const uint32_t local = static_cast<uint32_t>(shard.by_index.size());
  GHD_CHECK(static_cast<uint64_t>(local) < (uint64_t{1} << (32 - shard_bits_)));
  it->second = local;
  shard.by_index.emplace_back(&it->first, h);
  if (inserted != nullptr) *inserted = true;
  return (local << shard_bits_) | static_cast<uint32_t>(h & shard_mask_);
}

const VertexSet& SetInterner::Resolve(uint32_t id) const {
  const Shard& shard = *shards_[id & shard_mask_];
  std::lock_guard<std::mutex> lock(shard.mu);
  const uint32_t local = id >> shard_bits_;
  GHD_DCHECK(local < shard.by_index.size());
  // Safe to hand out past the unlock: the pointee is an unordered_map key,
  // node-stable and immutable once inserted.
  return *shard.by_index[local].first;
}

uint64_t SetInterner::HashOf(uint32_t id) const {
  const Shard& shard = *shards_[id & shard_mask_];
  std::lock_guard<std::mutex> lock(shard.mu);
  const uint32_t local = id >> shard_bits_;
  GHD_DCHECK(local < shard.by_index.size());
  return shard.by_index[local].second;
}

size_t SetInterner::Size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->by_index.size();
  }
  return total;
}

}  // namespace ghd
