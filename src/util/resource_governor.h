// Unified resource governor for every anytime search engine in the library.
//
// The paper's core tension — exact GHW is NP-hard already at k = 3, while
// hypertree width gives a polynomial factor-(3+o(1)) fallback — means a
// production width solver must *expect* to hit resource walls and degrade
// gracefully instead of hanging or crashing. Before the governor, each engine
// carried its own ad-hoc node counter with slightly different semantics
// (states vs. nodes vs. pivots, deadline polled at different strides, no
// memory accounting, no cross-engine sharing). `Budget` replaces all of them:
//
//  * one object carries a wall-clock deadline, a tick (search node) budget,
//    an approximate memory budget, and a cooperative cancel flag;
//  * every search hot loop calls `Tick()` — an atomic increment plus exact
//    integer limit checks, with the clock read amortized to every
//    `kDeadlinePollPeriod` ticks;
//  * budgets chain: a child slice created by the anytime driver observes its
//    parent's exhaustion/cancellation through `AttachParent`, so one SIGINT
//    or deadline stops the whole portfolio;
//  * `Cancel()` is async-signal-safe (a single atomic store), so a SIGINT
//    handler can stop every solver sharing the budget;
//  * fault injection (`InjectFailureAfter` / the GHD_FAULT_TICKS environment
//    variable) deterministically fires exhaustion at the Nth tick, letting
//    tests exercise every truncation path of every engine.
//
// Engines report how they stopped through `Outcome` instead of a bare
// nullopt: `complete` means the search space was exhausted, otherwise
// `stop_reason` says which wall was hit. Best-so-far bounds stay valid either
// way — truncation is never allowed to turn into a wrong answer (see the
// memoization rules in core/k_decider.cc).
#ifndef GHD_UTIL_RESOURCE_GOVERNOR_H_
#define GHD_UTIL_RESOURCE_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <string>

namespace ghd {

/// Why a search stopped before exhausting its search space.
enum class StopReason {
  kNone = 0,        // still running, or ran to completion
  kDeadline,        // wall-clock deadline expired
  kTickBudget,      // tick (search node / state) budget exhausted
  kMemoryBudget,    // approximate memory budget exceeded
  kCancelled,       // external cooperative cancellation (e.g. SIGINT)
  kFaultInjected,   // deterministic test fault (GHD_FAULT_TICKS)
  kGuardCap,        // guard-family size cap hit during closure generation
                    // (set by the closure layer, never by Budget itself)
};

/// Short stable name ("deadline", "cancelled", ...) for logs and JSON.
const char* StopReasonName(StopReason reason);

/// Structured termination report carried by every engine result. `complete`
/// means the engine exhausted its search space (its answer is exact);
/// otherwise `stop_reason` records the wall that was hit and any reported
/// bounds are best-so-far (still validated, never wrong — just loose).
struct Outcome {
  bool complete = true;
  StopReason stop_reason = StopReason::kNone;
  long ticks = 0;

  bool truncated() const { return !complete; }
  /// "complete (n ticks)" or "<reason> (n ticks)".
  std::string ToString() const;
};

/// Shared, thread-safe resource budget. Configure before the search starts
/// (the setters are not synchronized against concurrent Tick callers), then
/// share by pointer: Budget is neither copyable nor movable.
class Budget {
 public:
  /// Unlimited budget.
  Budget() = default;
  /// Root budget: deadline in seconds (<= 0 none), tick budget (<= 0 none),
  /// approximate memory budget in bytes (0 none).
  explicit Budget(double deadline_seconds, long tick_budget = 0,
                  size_t memory_bytes = 0);

  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  /// Deadline `seconds` from now; <= 0 clears it.
  void SetDeadlineSeconds(double seconds);
  /// Limit on Tick() calls; <= 0 clears it.
  void SetTickBudget(long ticks);
  /// Approximate memory limit for Charge() accounting; 0 clears it.
  void SetMemoryBudget(size_t bytes);
  /// Deterministically fire kFaultInjected at the nth Tick(); <= 0 disables.
  void InjectFailureAfter(long ticks);
  /// Reads GHD_FAULT_TICKS and arms InjectFailureAfter when set to a positive
  /// integer. Called on *root* budgets only (anytime driver, CLI), so nested
  /// slices don't each re-fire the same fault.
  void InjectFailureFromEnv();
  /// Chains this budget below `parent`: Tick() and Charge() forward into the
  /// parent (so the root counts global work, and a root-level fault injection
  /// or tick budget fires at a deterministic global tick index no matter
  /// which slice was active), and the parent's exhaustion or cancellation
  /// stops this budget too.
  void AttachParent(Budget* parent);

  /// Counts one unit of search work. Returns true while the search may
  /// continue; false once any limit fired (idempotent thereafter). The
  /// integer limits (tick budget, fault injection) are exact; the wall clock
  /// is polled every kDeadlinePollPeriod ticks.
  bool Tick();

  /// Accounts `bytes` of (approximate, high-water-free cumulative) memory.
  /// Returns false once the memory budget is exceeded.
  bool Charge(size_t bytes);

  /// Cooperative external cancellation. Async-signal-safe: a single relaxed
  /// atomic store, no locks, no allocation — callable from a SIGINT handler.
  void Cancel();

  /// True once any limit fired on this budget or an attached ancestor.
  bool Stopped() const;

  /// First reason that fired; ancestors' reasons are reported verbatim so
  /// provenance survives budget chaining. kNone while running.
  StopReason reason() const;

  long ticks_used() const { return ticks_.load(std::memory_order_relaxed); }
  size_t bytes_charged() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  double ElapsedSeconds() const;
  /// Seconds until the deadline (clamped at 0); +infinity when unlimited.
  double RemainingSeconds() const;

  /// Budget-consumption fractions in [0, 1] for live surfaces (heartbeat,
  /// obs_top). -1 when the corresponding limit is not set, so "unlimited"
  /// stays distinguishable from "barely started".
  double DeadlineFraction() const;
  double TickFraction() const;
  double MemoryFraction() const;

  /// Snapshot: complete iff nothing fired yet.
  Outcome MakeOutcome() const;

  /// Clock poll stride of Tick(); a power of two.
  static constexpr long kDeadlinePollPeriod = 64;

 private:
  using Clock = std::chrono::steady_clock;

  /// Records the first stop reason (set-once; later calls are no-ops).
  void Stop(StopReason reason);

  std::atomic<long> ticks_{0};
  std::atomic<size_t> bytes_{0};
  std::atomic<int> reason_{static_cast<int>(StopReason::kNone)};
  Budget* parent_ = nullptr;

  Clock::time_point start_ = Clock::now();
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  double deadline_seconds_ = 0;
  long tick_budget_ = 0;
  long inject_after_ = 0;
  size_t memory_budget_ = 0;
};

}  // namespace ghd

#endif  // GHD_UTIL_RESOURCE_GOVERNOR_H_
