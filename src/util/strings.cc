#include "util/strings.h"

#include <cctype>

namespace ghd {

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitTrimmed(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const std::string& field : Split(s, sep)) {
    std::string_view t = TrimWhitespace(field);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

int ParseNonNegativeInt(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return -1;
  long value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
    if (value > 1'000'000'000L) return -1;
  }
  return static_cast<int>(value);
}

}  // namespace ghd
