// Internal invariant checking. GHD_CHECK fires in all build types; it guards
// algorithmic invariants whose violation would make solver answers unsound.
#ifndef GHD_UTIL_CHECK_H_
#define GHD_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace ghd {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "GHD_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace internal
}  // namespace ghd

/// Aborts the process when `cond` is false. Used for internal invariants that
/// must hold regardless of input (violations are library bugs, not user errors).
#define GHD_CHECK(cond)                                            \
  do {                                                             \
    if (!(cond)) ::ghd::internal::CheckFailed(#cond, __FILE__, __LINE__); \
  } while (0)

/// Debug-only variant of GHD_CHECK.
#ifdef NDEBUG
#define GHD_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define GHD_DCHECK(cond) GHD_CHECK(cond)
#endif

#endif  // GHD_UTIL_CHECK_H_
