// Exact rational arithmetic for the LP substrate (fractional edge covers).
// Numerator/denominator in 64 bits with checked 128-bit intermediates;
// widths of laptop-scale instances stay far below the overflow guard.
#ifndef GHD_UTIL_RATIONAL_H_
#define GHD_UTIL_RATIONAL_H_

#include <cstdint>
#include <string>

#include "util/check.h"

namespace ghd {

/// Normalized rational number (gcd-reduced, positive denominator).
class Rational {
 public:
  Rational() : num_(0), den_(1) {}
  Rational(int64_t value) : num_(value), den_(1) {}  // NOLINT
  /// `den` must be nonzero; the sign moves to the numerator.
  Rational(int64_t num, int64_t den);

  int64_t num() const { return num_; }
  int64_t den() const { return den_; }

  bool IsZero() const { return num_ == 0; }
  bool IsNegative() const { return num_ < 0; }
  bool IsPositive() const { return num_ > 0; }

  Rational operator-() const { return Rational(-num_, den_); }
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  /// Division by zero is a programming bug.
  Rational operator/(const Rational& o) const;

  bool operator==(const Rational& o) const {
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator<=(const Rational& o) const { return !(o < *this); }
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator>=(const Rational& o) const { return !(*this < o); }

  double ToDouble() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  /// "3/2" or "2" when integral.
  std::string ToString() const;

 private:
  int64_t num_;
  int64_t den_;
};

}  // namespace ghd

#endif  // GHD_UTIL_RATIONAL_H_
