// Status / Result<T>: exception-free error propagation for fallible operations
// (parsing, IO, user-facing validation). Algorithm-internal invariants use
// GHD_CHECK instead; algorithms that can legitimately "not find" something
// return std::optional.
#ifndef GHD_UTIL_STATUS_H_
#define GHD_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace ghd {

/// Error category for Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kParseError,
  kResourceExhausted,  // time / memory / node budget exceeded
  kInternal,
};

/// Cheap value-type status: either OK or a code plus a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs an error status; `code` must not be kOk.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    GHD_CHECK(code_ != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit from value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from error status; `status.ok()` must be false.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    GHD_CHECK(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Value accessors; calling them on an error Result is a programming bug.
  const T& value() const& {
    GHD_CHECK(ok());
    return *value_;
  }
  T& value() & {
    GHD_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    GHD_CHECK(ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace ghd

#endif  // GHD_UTIL_STATUS_H_
