// In-memory relations over integer-valued variables, with the relational
// operators (natural join, semijoin, projection) that decomposition-based
// CSP / conjunctive-query evaluation is built from.
#ifndef GHD_CSP_RELATION_H_
#define GHD_CSP_RELATION_H_

#include <vector>

namespace ghd {

/// A relation with a scope of distinct variable ids and a list of tuples
/// (one value per scope position).
class Relation {
 public:
  /// Empty relation over `scope` (variable ids must be distinct).
  explicit Relation(std::vector<int> scope);

  const std::vector<int>& scope() const { return scope_; }
  int arity() const { return static_cast<int>(scope_.size()); }
  int size() const { return static_cast<int>(tuples_.size()); }
  bool empty() const { return tuples_.empty(); }
  const std::vector<std::vector<int>>& tuples() const { return tuples_; }

  /// Position of variable `var` in the scope, or -1.
  int PositionOf(int var) const;

  /// Appends a tuple; its length must equal the arity.
  void AddTuple(std::vector<int> tuple);

  /// Natural join: scopes are merged, tuples agree on shared variables.
  static Relation NaturalJoin(const Relation& a, const Relation& b);

  /// Semijoin: the tuples of *this that agree with at least one tuple of
  /// `other` on the shared variables.
  Relation SemijoinWith(const Relation& other) const;

  /// Projection onto `vars` (each must be in the scope), with deduplication.
  Relation ProjectOnto(const std::vector<int>& vars) const;

  /// True when some tuple agrees with `assignment` on every scope variable
  /// assigned there (assignment[v] < 0 means unassigned). Used for partial
  /// consistency checks in backtracking search.
  bool HasTupleConsistentWith(const std::vector<int>& assignment) const;

  /// First tuple consistent with `assignment`, or nullptr.
  const std::vector<int>* FindTupleConsistentWith(
      const std::vector<int>& assignment) const;

  /// Removes duplicate tuples.
  void Deduplicate();

 private:
  std::vector<int> scope_;
  std::vector<std::vector<int>> tuples_;
};

}  // namespace ghd

#endif  // GHD_CSP_RELATION_H_
