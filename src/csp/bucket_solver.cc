#include "csp/bucket_solver.h"

#include <algorithm>

#include "obs/obs.h"
#include "td/bucket_elimination.h"
#include "td/ordering_heuristics.h"
#include "util/check.h"

namespace ghd {
namespace {

// Bucket of a relation: the variable of its scope eliminated earliest.
int BucketOf(const Relation& r, const std::vector<int>& position_of) {
  int best = -1;
  for (int v : r.scope()) {
    if (best < 0 || position_of[v] < position_of[best]) best = v;
  }
  return best;
}

}  // namespace

std::optional<std::vector<int>> SolveByBucketElimination(
    const Csp& csp, const std::vector<int>& ordering,
    BucketSolveStats* stats, Budget* budget) {
  BucketSolveStats local;
  BucketSolveStats* s = stats != nullptr ? stats : &local;
  *s = BucketSolveStats{};
  auto truncate = [&]() -> std::optional<std::vector<int>> {
    s->decided = false;
    s->outcome = budget->MakeOutcome();
    s->outcome.complete = false;
    return std::nullopt;
  };
  const int n = csp.num_variables();
  GHD_CHECK(static_cast<int>(ordering.size()) == n);
  for (int v = 0; v < n; ++v) GHD_CHECK(csp.domain_sizes[v] >= 1);

  std::vector<int> position_of(n);
  for (int i = 0; i < n; ++i) position_of[ordering[i]] = i;

  std::vector<std::vector<Relation>> buckets(n);
  for (const Relation& c : csp.constraints) {
    if (c.empty()) return std::nullopt;  // an unsatisfiable constraint
    if (c.arity() == 0) continue;        // trivially true
    buckets[BucketOf(c, position_of)].push_back(c);
  }

  // Forward: process buckets in elimination order; join, project v away,
  // push the derived relation down to its new bucket.
  for (int i = 0; i < n; ++i) {
    if (budget != nullptr && !budget->Tick()) return truncate();
    const int v = ordering[i];
    if (buckets[v].empty()) continue;
    Relation joined = buckets[v][0];
    for (size_t r = 1; r < buckets[v].size(); ++r) {
      if (budget != nullptr && !budget->Tick()) return truncate();
      joined = Relation::NaturalJoin(joined, buckets[v][r]);
      ++s->joins;
      GHD_COUNT(kCspJoins);
      GHD_HISTO(kJoinSize, joined.size());
      // Intermediate relations are where bucket elimination blows up
      // (d^(w+1) tuples); charge their tuple storage against the governor.
      if (budget != nullptr &&
          !budget->Charge(joined.size() * joined.arity() * sizeof(int))) {
        return truncate();
      }
    }
    s->max_relation_size =
        std::max(s->max_relation_size, static_cast<long>(joined.size()));
    GHD_GAUGE_MAX(kMaxRelationSize, joined.size());
    if (joined.empty()) return std::nullopt;
    std::vector<int> remaining;
    for (int u : joined.scope()) {
      if (u != v) remaining.push_back(u);
    }
    if (remaining.empty()) continue;  // fully eliminated, satisfiable
    Relation projected = joined.ProjectOnto(remaining);
    if (projected.empty()) return std::nullopt;
    buckets[BucketOf(projected, position_of)].push_back(std::move(projected));
  }

  // Backward: assign in reverse elimination order; every relation in v's
  // bucket has all non-v variables already assigned, so a simple membership
  // scan per candidate value is backtrack-free.
  std::vector<int> assignment(n, -1);
  for (int i = n - 1; i >= 0; --i) {
    const int v = ordering[i];
    bool assigned = false;
    for (int value = 0; value < csp.domain_sizes[v] && !assigned; ++value) {
      assignment[v] = value;
      bool ok = true;
      for (const Relation& r : buckets[v]) {
        if (!r.HasTupleConsistentWith(assignment)) {
          ok = false;
          break;
        }
      }
      if (ok) assigned = true;
    }
    GHD_CHECK(assigned);  // guaranteed by the forward pass
  }
  GHD_CHECK(csp.IsSolution(assignment));
  return assignment;
}

std::optional<std::vector<int>> SolveByBucketElimination(
    const Csp& csp, BucketSolveStats* stats, Budget* budget) {
  const Hypergraph h = csp.ConstraintHypergraph();
  return SolveByBucketElimination(csp, MinFillOrdering(h.PrimalGraph()), stats,
                                  budget);
}

}  // namespace ghd
