// Constraint satisfaction problems: the application domain that makes widths
// matter — CSPs whose constraint hypergraphs have ghw <= k are solvable in
// polynomial time from a width-k GHD. Includes generators for the workloads
// used by examples and benchmarks.
#ifndef GHD_CSP_CSP_H_
#define GHD_CSP_CSP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "csp/relation.h"
#include "graph/graph.h"
#include "hypergraph/hypergraph.h"

namespace ghd {

/// A CSP: variables with 0-based finite domains, and constraint relations
/// over variable ids.
struct Csp {
  std::vector<std::string> variable_names;
  std::vector<int> domain_sizes;
  std::vector<Relation> constraints;

  int num_variables() const { return static_cast<int>(variable_names.size()); }

  /// The constraint hypergraph: one vertex per variable, one hyperedge per
  /// constraint scope.
  Hypergraph ConstraintHypergraph() const;

  /// Checks a complete assignment (one value per variable) against every
  /// constraint.
  bool IsSolution(const std::vector<int>& assignment) const;
};

/// Graph-coloring CSP: one variable per vertex, inequality constraints per
/// edge ("neighboring regions get distinct colors").
Csp MakeColoringCsp(const Graph& g, int num_colors);

/// Random CSP over the scopes of a hypergraph: each hyperedge becomes a
/// constraint containing each of the d^|scope| tuples independently with
/// probability `tightness` (at least one tuple is always kept so constraints
/// are non-trivially satisfiable locally).
Csp MakeRandomCsp(const Hypergraph& h, int domain_size, double tightness,
                  uint64_t seed);

}  // namespace ghd

#endif  // GHD_CSP_CSP_H_
