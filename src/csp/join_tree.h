// Join trees: the acyclic CSP instances produced from (generalized hypertree)
// decompositions. Each decomposition node becomes one relation — the join of
// its λ-constraints projected onto its bag — and the decomposition's width
// bounds the cost of building each relation (the tractability mechanism of
// bounded-ghw classes).
#ifndef GHD_CSP_JOIN_TREE_H_
#define GHD_CSP_JOIN_TREE_H_

#include <utility>
#include <vector>

#include "core/ghd.h"
#include "csp/csp.h"
#include "csp/relation.h"
#include "util/status.h"

namespace ghd {

/// The solution-equivalent acyclic instance: one relation per decomposition
/// node, tree edges over node indices.
struct JoinTree {
  std::vector<Relation> relations;
  std::vector<std::pair<int, int>> edges;

  int num_nodes() const { return static_cast<int>(relations.size()); }
};

/// Builds the join tree of `csp` from a decomposition of its constraint
/// hypergraph (made complete internally, so every constraint is enforced at
/// some node). Requires one constraint per hyperedge, in hypergraph edge
/// order — the layout Csp::ConstraintHypergraph produces.
Result<JoinTree> BuildJoinTree(const Csp& csp,
                               const GeneralizedHypertreeDecomposition& ghd);

}  // namespace ghd

#endif  // GHD_CSP_JOIN_TREE_H_
