// Conjunctive query evaluation — the paper's original database setting.
// A conjunctive query is a set of atoms over a database of relations plus a
// list of free (output) variables; its hypergraph's GHW bounds evaluation
// cost. Evaluation: decompose the query hypergraph, materialize the join
// tree, run the Yannakakis full reduction, then join the reduced relations
// bottom-up projecting onto free variables — output-polynomial on
// bounded-width queries.
#ifndef GHD_CSP_QUERY_H_
#define GHD_CSP_QUERY_H_

#include <string>
#include <vector>

#include "csp/relation.h"
#include "hypergraph/hypergraph.h"
#include "util/status.h"

namespace ghd {

/// One query atom: a relation name applied to variables, e.g. r(x, y, x).
/// Repeated variables express equality selections.
struct QueryAtom {
  std::string relation;
  std::vector<std::string> variables;
};

/// A conjunctive query: answer(free_variables) :- atoms.
struct ConjunctiveQuery {
  std::vector<std::string> free_variables;
  std::vector<QueryAtom> atoms;
};

/// A named database of relations. Scopes in stored relations are positional
/// (0, 1, ...); arity must match each atom using them.
struct Database {
  std::vector<std::string> names;
  std::vector<std::vector<std::vector<int>>> tables;  // rows of values

  /// Adds a table; all rows must have equal arity.
  void AddTable(const std::string& name,
                std::vector<std::vector<int>> rows);
  int IndexOf(const std::string& name) const;
};

/// Parses "ans(x, z) :- r(x, y), s(y, z)." Returns ParseError on malformed
/// input. Whitespace is free; the trailing period is optional.
Result<ConjunctiveQuery> ParseConjunctiveQuery(const std::string& text);

/// The query hypergraph: one vertex per variable, one edge per atom.
/// Atoms with repeated variables contribute their variable set.
Hypergraph QueryHypergraph(const ConjunctiveQuery& query);

/// Result of evaluation: the answer relation over the free variables (in
/// their query order), deduplicated.
struct QueryAnswer {
  std::vector<std::string> variables;
  std::vector<std::vector<int>> rows;
  int decomposition_width = 0;
};

/// Evaluates the query over the database via a GHD of the query hypergraph:
/// per-node joins bounded by the width, Yannakakis reduction, then a
/// bottom-up join projected onto free variables ∪ connectors.
/// Errors: unknown relation names, arity mismatches, free variables not
/// occurring in any atom.
Result<QueryAnswer> EvaluateConjunctiveQuery(const Database& db,
                                             const ConjunctiveQuery& query);

/// Reference evaluator: full join of all atoms then projection. Exponential;
/// for testing the decomposed evaluator.
Result<QueryAnswer> EvaluateByFullJoin(const Database& db,
                                       const ConjunctiveQuery& query);

}  // namespace ghd

#endif  // GHD_CSP_QUERY_H_
