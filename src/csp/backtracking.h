// Baseline CSP solver: chronological backtracking with partial-consistency
// lookahead. This is the worst-case-exponential comparator that decomposition
// -based solving is measured against in bench/csp_solving.
#ifndef GHD_CSP_BACKTRACKING_H_
#define GHD_CSP_BACKTRACKING_H_

#include <optional>
#include <vector>

#include "csp/csp.h"
#include "util/resource_governor.h"

namespace ghd {

/// Budget for the backtracking search.
struct BacktrackingOptions {
  /// Limit on assignment nodes; <= 0 means unlimited. Ignored when `budget`
  /// is set.
  long node_budget = 0;
  /// Shared resource governor; when null a private budget is built from
  /// `node_budget`. Ticked once per assignment node.
  Budget* budget = nullptr;
};

/// Outcome: `decided` false means the budget ran out first. A solution found
/// before the budget fired still stands (`solution` is always verified).
struct BacktrackingResult {
  bool decided = false;
  std::optional<std::vector<int>> solution;
  long nodes_visited = 0;
  Outcome outcome;
};

/// Solves by depth-first assignment in variable order, pruning any partial
/// assignment under which some constraint has no consistent tuple left.
BacktrackingResult SolveBacktracking(const Csp& csp,
                                     const BacktrackingOptions& options = {});

}  // namespace ghd

#endif  // GHD_CSP_BACKTRACKING_H_
