// Baseline CSP solver: chronological backtracking with partial-consistency
// lookahead. This is the worst-case-exponential comparator that decomposition
// -based solving is measured against in bench/csp_solving.
#ifndef GHD_CSP_BACKTRACKING_H_
#define GHD_CSP_BACKTRACKING_H_

#include <optional>
#include <vector>

#include "csp/csp.h"

namespace ghd {

/// Budget for the backtracking search.
struct BacktrackingOptions {
  /// Limit on assignment nodes; <= 0 means unlimited.
  long node_budget = 0;
};

/// Outcome: `decided` false means the budget ran out first.
struct BacktrackingResult {
  bool decided = false;
  std::optional<std::vector<int>> solution;
  long nodes_visited = 0;
};

/// Solves by depth-first assignment in variable order, pruning any partial
/// assignment under which some constraint has no consistent tuple left.
BacktrackingResult SolveBacktracking(const Csp& csp,
                                     const BacktrackingOptions& options = {});

}  // namespace ghd

#endif  // GHD_CSP_BACKTRACKING_H_
