#include "csp/sat.h"

#include <cmath>
#include <cstdlib>

#include "hypergraph/hypergraph_builder.h"
#include "util/check.h"

namespace ghd {
namespace {

enum : int8_t { kUnassigned = -1, kFalse = 0, kTrue = 1 };

struct Dpll {
  const CnfFormula* formula;
  long node_budget;
  long nodes = 0;
  bool out_of_budget = false;
  std::vector<int8_t> value;  // indexed by variable, [1..n]

  bool LiteralTrue(int lit) const {
    const int8_t v = value[std::abs(lit)];
    return v != kUnassigned && ((lit > 0) == (v == kTrue));
  }
  bool LiteralFalse(int lit) const {
    const int8_t v = value[std::abs(lit)];
    return v != kUnassigned && ((lit > 0) == (v == kFalse));
  }

  // Unit propagation; returns false on conflict. Appends assigned variables
  // to `trail` for undo.
  bool Propagate(std::vector<int>* trail) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& clause : formula->clauses) {
        int unassigned_lit = 0;
        int unassigned_count = 0;
        bool satisfied = false;
        for (int lit : clause) {
          if (LiteralTrue(lit)) {
            satisfied = true;
            break;
          }
          if (!LiteralFalse(lit)) {
            ++unassigned_count;
            unassigned_lit = lit;
          }
        }
        if (satisfied) continue;
        if (unassigned_count == 0) return false;  // conflict
        if (unassigned_count == 1) {
          const int var = std::abs(unassigned_lit);
          value[var] = unassigned_lit > 0 ? kTrue : kFalse;
          trail->push_back(var);
          changed = true;
        }
      }
    }
    return true;
  }

  bool Recurse() {
    ++nodes;
    if (node_budget > 0 && nodes > node_budget) {
      out_of_budget = true;
      return false;
    }
    std::vector<int> trail;
    if (!Propagate(&trail)) {
      for (int v : trail) value[v] = kUnassigned;
      return false;
    }
    int branch = 0;
    for (int v = 1; v <= formula->num_vars; ++v) {
      if (value[v] == kUnassigned) {
        branch = v;
        break;
      }
    }
    if (branch == 0) return true;  // all assigned, no conflict
    for (int8_t try_value : {kTrue, kFalse}) {
      value[branch] = try_value;
      if (Recurse()) return true;
      value[branch] = kUnassigned;
      if (out_of_budget) break;
    }
    for (int v : trail) value[v] = kUnassigned;
    return false;
  }
};

}  // namespace

std::optional<std::vector<bool>> SolveDpll(const CnfFormula& formula,
                                           long node_budget) {
  Dpll solver;
  solver.formula = &formula;
  solver.node_budget = node_budget;
  solver.value.assign(formula.num_vars + 1, kUnassigned);
  if (!solver.Recurse()) return std::nullopt;
  std::vector<bool> assignment(formula.num_vars + 1, false);
  for (int v = 1; v <= formula.num_vars; ++v) {
    assignment[v] = solver.value[v] == kTrue;
  }
  return assignment;
}

Csp CspFromCnf(const CnfFormula& formula) {
  Csp csp;
  for (int v = 1; v <= formula.num_vars; ++v) {
    csp.variable_names.push_back("x" + std::to_string(v));
    csp.domain_sizes.push_back(2);
  }
  for (const auto& clause : formula.clauses) {
    std::vector<int> scope;
    for (int lit : clause) {
      const int var = std::abs(lit) - 1;  // CSP variables are 0-based.
      bool duplicate = false;
      for (int s : scope) duplicate = duplicate || s == var;
      if (!duplicate) scope.push_back(var);
    }
    Relation r(scope);
    const int arity = static_cast<int>(scope.size());
    for (int mask = 0; mask < (1 << arity); ++mask) {
      std::vector<int> tuple(arity);
      for (int i = 0; i < arity; ++i) tuple[i] = (mask >> i) & 1;
      bool satisfies = false;
      for (int lit : clause) {
        const int var = std::abs(lit) - 1;
        int pos = -1;
        for (int i = 0; i < arity; ++i) {
          if (scope[i] == var) pos = i;
        }
        GHD_CHECK(pos >= 0);
        if ((tuple[pos] == 1) == (lit > 0)) satisfies = true;
      }
      if (satisfies) r.AddTuple(std::move(tuple));
    }
    csp.constraints.push_back(std::move(r));
  }
  return csp;
}

Hypergraph ClauseHypergraph(const CnfFormula& formula) {
  HypergraphBuilder builder;
  for (int v = 1; v <= formula.num_vars; ++v) {
    builder.AddVertex("x" + std::to_string(v));
  }
  for (size_t c = 0; c < formula.clauses.size(); ++c) {
    std::vector<int> ids;
    for (int lit : formula.clauses[c]) {
      const int var = std::abs(lit) - 1;
      bool duplicate = false;
      for (int s : ids) duplicate = duplicate || s == var;
      if (!duplicate) ids.push_back(var);
    }
    builder.AddEdgeByIds("cl" + std::to_string(c), ids);
  }
  return std::move(builder).Build();
}

}  // namespace ghd
