#include "csp/problems.h"

#include <cstdlib>
#include <string>

#include "util/check.h"

namespace ghd {

Csp NQueensCsp(int n) {
  GHD_CHECK(n >= 1);
  Csp csp;
  for (int c = 0; c < n; ++c) {
    csp.variable_names.push_back("q" + std::to_string(c));
    csp.domain_sizes.push_back(n);
  }
  for (int c1 = 0; c1 < n; ++c1) {
    for (int c2 = c1 + 1; c2 < n; ++c2) {
      Relation r({c1, c2});
      for (int r1 = 0; r1 < n; ++r1) {
        for (int r2 = 0; r2 < n; ++r2) {
          const bool attacks = r1 == r2 || std::abs(r1 - r2) == c2 - c1;
          if (!attacks) r.AddTuple({r1, r2});
        }
      }
      csp.constraints.push_back(std::move(r));
    }
  }
  return csp;
}

Csp PigeonholeCsp(int pigeons, int holes) {
  GHD_CHECK(pigeons >= 1 && holes >= 1);
  Csp csp;
  for (int p = 0; p < pigeons; ++p) {
    csp.variable_names.push_back("p" + std::to_string(p));
    csp.domain_sizes.push_back(holes);
  }
  for (int p1 = 0; p1 < pigeons; ++p1) {
    for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
      Relation r({p1, p2});
      for (int h1 = 0; h1 < holes; ++h1) {
        for (int h2 = 0; h2 < holes; ++h2) {
          if (h1 != h2) r.AddTuple({h1, h2});
        }
      }
      csp.constraints.push_back(std::move(r));
    }
  }
  return csp;
}

}  // namespace ghd
