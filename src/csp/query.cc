#include "csp/query.h"

#include <algorithm>
#include <cctype>

#include "core/ghw_upper.h"
#include "hypergraph/hypergraph_builder.h"
#include "td/ordering_heuristics.h"
#include "util/check.h"
#include "util/strings.h"

namespace ghd {
namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Lexer shared by head and body: name '(' name, name, ... ')'.
struct AtomLexer {
  const std::string& text;
  size_t i = 0;

  void SkipSpace() {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
  }
  std::string ReadName() {
    SkipSpace();
    const size_t start = i;
    while (i < text.size() && IsNameChar(text[i])) ++i;
    return text.substr(start, i - start);
  }
  bool Consume(char c) {
    SkipSpace();
    if (i < text.size() && text[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool ConsumeTurnstile() {
    SkipSpace();
    if (i + 1 < text.size() && text[i] == ':' && text[i + 1] == '-') {
      i += 2;
      return true;
    }
    return false;
  }
  bool AtEnd() {
    SkipSpace();
    return i >= text.size();
  }
};

Result<QueryAtom> ReadAtom(AtomLexer* lex) {
  QueryAtom atom;
  atom.relation = lex->ReadName();
  if (atom.relation.empty()) return Status::ParseError("expected atom name");
  if (!lex->Consume('(')) {
    return Status::ParseError("expected '(' after '" + atom.relation + "'");
  }
  if (lex->Consume(')')) return atom;  // nullary head: boolean query
  while (true) {
    std::string var = lex->ReadName();
    if (var.empty()) return Status::ParseError("expected variable name");
    atom.variables.push_back(std::move(var));
    if (lex->Consume(',')) continue;
    if (lex->Consume(')')) break;
    return Status::ParseError("expected ',' or ')' in atom '" +
                              atom.relation + "'");
  }
  return atom;
}

// Converts one atom into a Relation over hypergraph vertex ids, applying
// equality selections for repeated variables.
Result<Relation> AtomRelation(const Database& db, const QueryAtom& atom,
                              const Hypergraph& h) {
  const int table = db.IndexOf(atom.relation);
  if (table < 0) {
    return Status::InvalidArgument("unknown relation '" + atom.relation + "'");
  }
  const auto& rows = db.tables[table];
  // Distinct variables in first-occurrence order, with their positions.
  std::vector<int> scope;
  std::vector<int> first_position;
  for (size_t pos = 0; pos < atom.variables.size(); ++pos) {
    const int id = h.VertexIdOf(atom.variables[pos]);
    GHD_CHECK(id >= 0);
    if (std::find(scope.begin(), scope.end(), id) == scope.end()) {
      scope.push_back(id);
      first_position.push_back(static_cast<int>(pos));
    }
  }
  Relation r(scope);
  for (const auto& row : rows) {
    if (row.size() != atom.variables.size()) {
      return Status::InvalidArgument(
          "arity mismatch for '" + atom.relation + "': table has " +
          std::to_string(row.size()) + " columns, atom uses " +
          std::to_string(atom.variables.size()));
    }
    // Equality selection: all positions of the same variable must agree.
    bool ok = true;
    for (size_t pos = 0; pos < atom.variables.size() && ok; ++pos) {
      const int id = h.VertexIdOf(atom.variables[pos]);
      for (size_t s = 0; s < scope.size(); ++s) {
        if (scope[s] == id && row[pos] != row[first_position[s]]) ok = false;
      }
    }
    if (!ok) continue;
    std::vector<int> tuple;
    tuple.reserve(scope.size());
    for (int pos : first_position) tuple.push_back(row[pos]);
    r.AddTuple(std::move(tuple));
  }
  r.Deduplicate();
  return r;
}

Status CheckQuery(const Database& db, const ConjunctiveQuery& query,
                  const Hypergraph& h) {
  if (query.atoms.empty()) {
    return Status::InvalidArgument("query has no atoms");
  }
  for (const QueryAtom& atom : query.atoms) {
    if (db.IndexOf(atom.relation) < 0) {
      return Status::InvalidArgument("unknown relation '" + atom.relation +
                                     "'");
    }
  }
  for (const std::string& v : query.free_variables) {
    if (h.VertexIdOf(v) < 0) {
      return Status::InvalidArgument("free variable '" + v +
                                     "' occurs in no atom");
    }
  }
  return Status::Ok();
}

QueryAnswer FinishAnswer(const ConjunctiveQuery& query, const Hypergraph& h,
                         Relation result, int width) {
  QueryAnswer answer;
  answer.variables = query.free_variables;
  answer.decomposition_width = width;
  // Order the columns by the query's free-variable list.
  std::vector<int> free_ids;
  bool scope_complete = true;
  for (const std::string& v : query.free_variables) {
    const int id = h.VertexIdOf(v);
    free_ids.push_back(id);
    scope_complete = scope_complete && result.PositionOf(id) >= 0;
  }
  if (!scope_complete) {
    // Unsatisfiable branch: the free variables never materialized.
    GHD_CHECK(result.empty());
    return answer;
  }
  Relation projected = result.ProjectOnto(free_ids);
  answer.rows = projected.tuples();
  std::sort(answer.rows.begin(), answer.rows.end());
  return answer;
}

}  // namespace

void Database::AddTable(const std::string& name,
                        std::vector<std::vector<int>> rows) {
  for (size_t r = 1; r < rows.size(); ++r) {
    GHD_CHECK(rows[r].size() == rows[0].size());
  }
  names.push_back(name);
  tables.push_back(std::move(rows));
}

int Database::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Result<ConjunctiveQuery> ParseConjunctiveQuery(const std::string& text) {
  AtomLexer lex{text};
  Result<QueryAtom> head = ReadAtom(&lex);
  if (!head.ok()) return head.status();
  if (!lex.ConsumeTurnstile()) return Status::ParseError("expected ':-'");
  ConjunctiveQuery query;
  query.free_variables = head.value().variables;
  while (true) {
    Result<QueryAtom> atom = ReadAtom(&lex);
    if (!atom.ok()) return atom.status();
    if (atom.value().variables.empty()) {
      return Status::ParseError("body atom '" + atom.value().relation +
                                "' has no variables");
    }
    query.atoms.push_back(std::move(atom).value());
    if (lex.Consume(',')) continue;
    break;
  }
  lex.Consume('.');
  if (!lex.AtEnd()) return Status::ParseError("trailing input after query");
  // Head variables that repeat are allowed; deduplicate while keeping order.
  std::vector<std::string> dedup;
  for (const std::string& v : query.free_variables) {
    if (std::find(dedup.begin(), dedup.end(), v) == dedup.end()) {
      dedup.push_back(v);
    }
  }
  query.free_variables = std::move(dedup);
  return query;
}

Hypergraph QueryHypergraph(const ConjunctiveQuery& query) {
  HypergraphBuilder builder;
  for (size_t a = 0; a < query.atoms.size(); ++a) {
    builder.AddEdge("a" + std::to_string(a), query.atoms[a].variables);
  }
  return std::move(builder).Build();
}

Result<QueryAnswer> EvaluateConjunctiveQuery(const Database& db,
                                             const ConjunctiveQuery& query) {
  const Hypergraph h = QueryHypergraph(query);
  Status check = CheckQuery(db, query, h);
  if (!check.ok()) return check;

  std::vector<Relation> atom_relations;
  for (const QueryAtom& atom : query.atoms) {
    Result<Relation> r = AtomRelation(db, atom, h);
    if (!r.ok()) return r.status();
    atom_relations.push_back(std::move(r).value());
  }

  // Decompose the query hypergraph and materialize one relation per node:
  // the join of its λ-atoms projected onto its bag.
  GhwUpperBoundResult decomp =
      GhwUpperBound(h, OrderingHeuristic::kMinFill, CoverMode::kExact);
  const GeneralizedHypertreeDecomposition complete =
      MakeComplete(h, decomp.ghd);
  const int t = complete.num_nodes();
  std::vector<Relation> node_relations;
  node_relations.reserve(t);
  for (int p = 0; p < t; ++p) {
    const std::vector<int>& lambda = complete.guards[p];
    if (lambda.empty()) {
      Relation truth(std::vector<int>{});
      truth.AddTuple({});
      node_relations.push_back(std::move(truth));
      continue;
    }
    Relation joined = atom_relations[lambda[0]];
    for (size_t i = 1; i < lambda.size(); ++i) {
      joined = Relation::NaturalJoin(joined, atom_relations[lambda[i]]);
    }
    node_relations.push_back(
        joined.ProjectOnto(complete.bags[p].ToVector()));
  }

  // Orient the tree at node 0 and run the Yannakakis full reduction.
  std::vector<std::vector<int>> adj(t);
  for (const auto& [a, b] : complete.tree_edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<int> parent(t, -2), order;
  order.push_back(0);
  parent[0] = -1;
  for (size_t i = 0; i < order.size(); ++i) {
    for (int q : adj[order[i]]) {
      if (parent[q] == -2) {
        parent[q] = order[i];
        order.push_back(q);
      }
    }
  }
  GHD_CHECK(static_cast<int>(order.size()) == t);
  for (int i = t - 1; i >= 1; --i) {
    const int node = order[i];
    node_relations[parent[node]] =
        node_relations[parent[node]].SemijoinWith(node_relations[node]);
    if (node_relations[parent[node]].empty()) {
      return FinishAnswer(query, h, Relation(std::vector<int>{}),
                          decomp.width);
    }
  }
  for (size_t i = 1; i < order.size(); ++i) {
    const int node = order[i];
    node_relations[node] =
        node_relations[node].SemijoinWith(node_relations[parent[node]]);
  }

  // Bottom-up answer assembly: at each node join the reduced relation with
  // the children's partial answers and project onto the variables still
  // needed above (free variables plus the connector to the parent).
  VertexSet free_vars(h.num_vertices());
  for (const std::string& v : query.free_variables) {
    free_vars.Set(h.VertexIdOf(v));
  }
  std::vector<Relation> partial(t, Relation(std::vector<int>{}));
  for (int i = t - 1; i >= 0; --i) {
    const int node = order[i];
    Relation acc = node_relations[node];
    for (int q : adj[node]) {
      if (parent[q] == node) acc = Relation::NaturalJoin(acc, partial[q]);
    }
    // Keep free variables present in acc plus the connector to the parent.
    VertexSet keep(h.num_vertices());
    for (int v : acc.scope()) {
      if (free_vars.Test(v)) keep.Set(v);
    }
    if (parent[node] >= 0) {
      VertexSet connector = complete.bags[node];
      connector &= complete.bags[parent[node]];
      keep |= connector;
    }
    // keep ⊆ acc's scope: free vars were filtered by it and the connector
    // lies inside this node's bag.
    partial[node] = acc.ProjectOnto(keep.ToVector());
  }
  return FinishAnswer(query, h, partial[0], decomp.width);
}

Result<QueryAnswer> EvaluateByFullJoin(const Database& db,
                                       const ConjunctiveQuery& query) {
  const Hypergraph h = QueryHypergraph(query);
  Status check = CheckQuery(db, query, h);
  if (!check.ok()) return check;
  Result<Relation> first = AtomRelation(db, query.atoms[0], h);
  if (!first.ok()) return first.status();
  Relation joined = std::move(first).value();
  for (size_t a = 1; a < query.atoms.size(); ++a) {
    Result<Relation> r = AtomRelation(db, query.atoms[a], h);
    if (!r.ok()) return r.status();
    joined = Relation::NaturalJoin(joined, r.value());
  }
  if (joined.empty()) {
    return FinishAnswer(query, h, Relation(std::vector<int>{}), 0);
  }
  return FinishAnswer(query, h, std::move(joined), 0);
}

}  // namespace ghd
