// Classic CSP workloads used in examples, tests, and benches.
#ifndef GHD_CSP_PROBLEMS_H_
#define GHD_CSP_PROBLEMS_H_

#include "csp/csp.h"

namespace ghd {

/// n-queens: one variable per column (value = row), pairwise constraints
/// forbidding shared rows and diagonals. Satisfiable for n = 1 and n >= 4.
Csp NQueensCsp(int n);

/// Pigeonhole: `pigeons` variables over `holes` values with pairwise
/// disequality. Satisfiable iff pigeons <= holes; the unsatisfiable case is
/// the classic hard instance for backtracking search.
Csp PigeonholeCsp(int pigeons, int holes);

}  // namespace ghd

#endif  // GHD_CSP_PROBLEMS_H_
