// Boolean satisfiability substrate: CNF formulas, a DPLL solver, and the
// SAT-as-CSP encoding (constraint hypergraphs of formulas). SAT is both a
// canonical CSP workload and the source problem of NP-hardness reductions.
#ifndef GHD_CSP_SAT_H_
#define GHD_CSP_SAT_H_

#include <optional>
#include <vector>

#include "csp/csp.h"
#include "hypergraph/hypergraph.h"

namespace ghd {

/// CNF formula: variables 1..num_vars; a literal is +v or -v.
struct CnfFormula {
  int num_vars = 0;
  std::vector<std::vector<int>> clauses;
};

/// DPLL with unit propagation. Returns a satisfying assignment indexed by
/// variable (index 0 unused), or nullopt when unsatisfiable.
std::optional<std::vector<bool>> SolveDpll(const CnfFormula& formula,
                                           long node_budget = 0);

/// SAT as a CSP: boolean variables, one constraint per clause whose relation
/// holds every clause-satisfying combination.
Csp CspFromCnf(const CnfFormula& formula);

/// The clause hypergraph: one vertex per variable, one edge per clause.
Hypergraph ClauseHypergraph(const CnfFormula& formula);

}  // namespace ghd

#endif  // GHD_CSP_SAT_H_
