#include "csp/join_tree.h"

#include "util/check.h"

namespace ghd {

Result<JoinTree> BuildJoinTree(const Csp& csp,
                               const GeneralizedHypertreeDecomposition& ghd) {
  const Hypergraph h = csp.ConstraintHypergraph();
  if (static_cast<int>(csp.constraints.size()) != h.num_edges()) {
    return Status::InvalidArgument("constraint/hyperedge count mismatch");
  }
  Status valid = ghd.Validate(h);
  if (!valid.ok()) return valid;
  const GeneralizedHypertreeDecomposition complete = MakeComplete(h, ghd);

  JoinTree jt;
  jt.relations.reserve(complete.num_nodes());
  jt.edges = complete.tree_edges;
  for (int p = 0; p < complete.num_nodes(); ++p) {
    const std::vector<int>& lambda = complete.guards[p];
    if (lambda.empty()) {
      GHD_CHECK(complete.bags[p].Empty());
      Relation truth(std::vector<int>{});
      truth.AddTuple({});
      jt.relations.push_back(std::move(truth));
      continue;
    }
    Relation joined = csp.constraints[lambda[0]];
    for (size_t i = 1; i < lambda.size(); ++i) {
      joined = Relation::NaturalJoin(joined, csp.constraints[lambda[i]]);
    }
    jt.relations.push_back(joined.ProjectOnto(complete.bags[p].ToVector()));
  }
  return jt;
}

}  // namespace ghd
