#include "csp/yannakakis.h"

#include <algorithm>

#include "util/check.h"

namespace ghd {
namespace {

// BFS order from node 0 with parent pointers.
void OrientTree(const JoinTree& jt, std::vector<int>* order,
                std::vector<int>* parent) {
  const int t = jt.num_nodes();
  std::vector<std::vector<int>> adj(t);
  for (const auto& [a, b] : jt.edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  parent->assign(t, -1);
  std::vector<char> seen(t, 0);
  order->clear();
  order->push_back(0);
  seen[0] = 1;
  for (size_t i = 0; i < order->size(); ++i) {
    const int p = (*order)[i];
    for (int q : adj[p]) {
      if (!seen[q]) {
        seen[q] = 1;
        (*parent)[q] = p;
        order->push_back(q);
      }
    }
  }
  GHD_CHECK(static_cast<int>(order->size()) == t);  // Join tree is connected.
}

}  // namespace

std::optional<std::vector<int>> SolveAcyclic(const Csp& csp, JoinTree jt,
                                             AcyclicSolveStats* stats) {
  AcyclicSolveStats local;
  AcyclicSolveStats* s = stats != nullptr ? stats : &local;
  *s = AcyclicSolveStats{};
  if (jt.num_nodes() == 0) return std::nullopt;

  std::vector<int> order, parent;
  OrientTree(jt, &order, &parent);

  // Bottom-up: reduce each parent by each child (children first).
  for (int i = jt.num_nodes() - 1; i >= 1; --i) {
    const int node = order[i];
    const int up = parent[node];
    jt.relations[up] = jt.relations[up].SemijoinWith(jt.relations[node]);
    ++s->semijoins;
    if (jt.relations[up].empty()) return std::nullopt;
  }
  if (jt.relations[order[0]].empty()) return std::nullopt;

  // Top-down: reduce each child by its parent.
  for (size_t i = 1; i < order.size(); ++i) {
    const int node = order[i];
    jt.relations[node] = jt.relations[node].SemijoinWith(jt.relations[parent[node]]);
    ++s->semijoins;
    GHD_CHECK(!jt.relations[node].empty());  // Full reduction can't empty it.
  }
  for (const Relation& r : jt.relations) {
    s->max_relation_size = std::max(s->max_relation_size,
                                    static_cast<long>(r.size()));
  }

  // Backtrack-free extraction, parents before children.
  std::vector<int> assignment(csp.num_variables(), -1);
  for (int node : order) {
    const Relation& r = jt.relations[node];
    const std::vector<int>* tuple = r.FindTupleConsistentWith(assignment);
    GHD_CHECK(tuple != nullptr);  // Guaranteed after the two passes.
    for (int i = 0; i < r.arity(); ++i) assignment[r.scope()[i]] = (*tuple)[i];
  }
  // Unconstrained variables take any domain value.
  for (int v = 0; v < csp.num_variables(); ++v) {
    if (assignment[v] < 0) {
      GHD_CHECK(csp.domain_sizes[v] >= 1);
      assignment[v] = 0;
    }
  }
  return assignment;
}

std::optional<std::vector<int>> SolveViaDecomposition(
    const Csp& csp, const GeneralizedHypertreeDecomposition& ghd,
    AcyclicSolveStats* stats) {
  Result<JoinTree> jt = BuildJoinTree(csp, ghd);
  GHD_CHECK(jt.ok());
  std::optional<std::vector<int>> solution =
      SolveAcyclic(csp, std::move(jt).value(), stats);
  if (solution.has_value()) GHD_CHECK(csp.IsSolution(*solution));
  return solution;
}

}  // namespace ghd
