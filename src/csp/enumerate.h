// Enumeration of all CSP solutions from a join tree: after the Yannakakis
// full reduction every consistent tuple choice extends to a solution, so a
// DFS over the tree nodes enumerates solutions with backtrack-free,
// output-polynomial delay — "computing all complete consistent assignments
// is feasible in output-polynomial time" made executable.
#ifndef GHD_CSP_ENUMERATE_H_
#define GHD_CSP_ENUMERATE_H_

#include <vector>

#include "core/ghd.h"
#include "csp/csp.h"
#include "csp/join_tree.h"

namespace ghd {

/// Enumerates solutions (up to `limit`; 0 = unlimited) of the CSP from a
/// join tree of its constraint hypergraph. Variables occurring in no
/// relation are fixed to value 0 in every reported solution. Returns the
/// solutions found; every one satisfies the CSP (checked).
std::vector<std::vector<int>> EnumerateAcyclicSolutions(const Csp& csp,
                                                        JoinTree jt,
                                                        long limit = 0);

/// Convenience: builds the join tree from a decomposition first.
std::vector<std::vector<int>> EnumerateSolutionsViaDecomposition(
    const Csp& csp, const GeneralizedHypertreeDecomposition& ghd,
    long limit = 0);

/// Exact solution count by product-sum dynamic programming over the join
/// tree (no enumeration): after the full reduction, each node tuple's count
/// is the product over children of the counts of compatible child tuples;
/// the root sum is the number of solutions. Runs in time polynomial in the
/// join tree size even when the count is astronomically large (the count
/// itself is CHECK-guarded against int64 overflow). Unconstrained variables
/// are pinned to 0, matching the enumerator.
long CountAcyclicSolutions(const Csp& csp, JoinTree jt);

/// Convenience: builds the join tree from a decomposition first.
long CountSolutionsViaDecomposition(
    const Csp& csp, const GeneralizedHypertreeDecomposition& ghd);

}  // namespace ghd

#endif  // GHD_CSP_ENUMERATE_H_
