#include "csp/csp.h"

#include "hypergraph/hypergraph_builder.h"
#include "util/check.h"
#include "util/rng.h"

namespace ghd {

Hypergraph Csp::ConstraintHypergraph() const {
  HypergraphBuilder builder;
  for (const std::string& name : variable_names) builder.AddVertex(name);
  for (size_t c = 0; c < constraints.size(); ++c) {
    builder.AddEdgeByIds("c" + std::to_string(c), constraints[c].scope());
  }
  return std::move(builder).Build();
}

bool Csp::IsSolution(const std::vector<int>& assignment) const {
  GHD_CHECK(assignment.size() == variable_names.size());
  for (int v = 0; v < num_variables(); ++v) {
    if (assignment[v] < 0 || assignment[v] >= domain_sizes[v]) return false;
  }
  for (const Relation& c : constraints) {
    bool matched = false;
    for (const auto& t : c.tuples()) {
      bool ok = true;
      for (int i = 0; i < c.arity() && ok; ++i) {
        if (t[i] != assignment[c.scope()[i]]) ok = false;
      }
      if (ok) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

Csp MakeColoringCsp(const Graph& g, int num_colors) {
  GHD_CHECK(num_colors >= 1);
  Csp csp;
  for (int v = 0; v < g.num_vertices(); ++v) {
    csp.variable_names.push_back("x" + std::to_string(v));
    csp.domain_sizes.push_back(num_colors);
  }
  for (int u = 0; u < g.num_vertices(); ++u) {
    g.Neighbors(u).ForEach([&](int v) {
      if (v <= u) return;
      Relation r({u, v});
      for (int a = 0; a < num_colors; ++a) {
        for (int b = 0; b < num_colors; ++b) {
          if (a != b) r.AddTuple({a, b});
        }
      }
      csp.constraints.push_back(std::move(r));
    });
  }
  return csp;
}

Csp MakeRandomCsp(const Hypergraph& h, int domain_size, double tightness,
                  uint64_t seed) {
  GHD_CHECK(domain_size >= 1);
  GHD_CHECK(tightness >= 0.0 && tightness <= 1.0);
  Rng rng(seed);
  Csp csp;
  for (int v = 0; v < h.num_vertices(); ++v) {
    csp.variable_names.push_back(h.vertex_name(v));
    csp.domain_sizes.push_back(domain_size);
  }
  for (int e = 0; e < h.num_edges(); ++e) {
    const std::vector<int> scope = h.edge(e).ToVector();
    Relation r(scope);
    // Enumerate all d^arity tuples (generators keep arities small).
    const int arity = static_cast<int>(scope.size());
    std::vector<int> tuple(arity, 0);
    long total = 1;
    for (int i = 0; i < arity; ++i) total *= domain_size;
    for (long idx = 0; idx < total; ++idx) {
      long rest = idx;
      for (int i = 0; i < arity; ++i) {
        tuple[i] = static_cast<int>(rest % domain_size);
        rest /= domain_size;
      }
      if (rng.Bernoulli(tightness)) r.AddTuple(tuple);
    }
    if (r.empty()) {
      // Keep every constraint locally satisfiable.
      std::vector<int> any(arity);
      for (int i = 0; i < arity; ++i) any[i] = rng.UniformInt(domain_size);
      r.AddTuple(std::move(any));
    }
    csp.constraints.push_back(std::move(r));
  }
  return csp;
}

}  // namespace ghd
