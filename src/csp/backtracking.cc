#include "csp/backtracking.h"

#include "util/check.h"

namespace ghd {
namespace {

struct Search {
  const Csp* csp;
  BacktrackingOptions options;
  long nodes = 0;
  bool out_of_budget = false;
  std::vector<int> assignment;
  // Constraints indexed by variable, to limit consistency rechecks.
  std::vector<std::vector<int>> constraints_of;

  bool Consistent(int var) {
    for (int c : constraints_of[var]) {
      if (!csp->constraints[c].HasTupleConsistentWith(assignment)) return false;
    }
    return true;
  }

  bool Recurse(int var) {
    if (var == csp->num_variables()) return true;
    for (int value = 0; value < csp->domain_sizes[var]; ++value) {
      ++nodes;
      if (options.node_budget > 0 && nodes > options.node_budget) {
        out_of_budget = true;
        return false;
      }
      assignment[var] = value;
      if (Consistent(var) && Recurse(var + 1)) return true;
      if (out_of_budget) return false;
    }
    assignment[var] = -1;
    return false;
  }
};

}  // namespace

BacktrackingResult SolveBacktracking(const Csp& csp,
                                     const BacktrackingOptions& options) {
  Search search;
  search.csp = &csp;
  search.options = options;
  search.assignment.assign(csp.num_variables(), -1);
  search.constraints_of.assign(csp.num_variables(), {});
  for (size_t c = 0; c < csp.constraints.size(); ++c) {
    for (int v : csp.constraints[c].scope()) {
      search.constraints_of[v].push_back(static_cast<int>(c));
    }
  }
  const bool found = search.Recurse(0);
  BacktrackingResult result;
  result.nodes_visited = search.nodes;
  result.decided = !search.out_of_budget;
  if (found) {
    GHD_CHECK(csp.IsSolution(search.assignment));
    result.solution = search.assignment;
  }
  return result;
}

}  // namespace ghd
