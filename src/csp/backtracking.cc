#include "csp/backtracking.h"

#include "obs/obs.h"
#include "util/check.h"

namespace ghd {
namespace {

struct Search {
  const Csp* csp;
  Budget* budget = nullptr;
  long nodes = 0;
  std::vector<int> assignment;
  // Constraints indexed by variable, to limit consistency rechecks.
  std::vector<std::vector<int>> constraints_of;

  bool Consistent(int var) {
    for (int c : constraints_of[var]) {
      if (!csp->constraints[c].HasTupleConsistentWith(assignment)) return false;
    }
    return true;
  }

  bool Recurse(int var) {
    if (var == csp->num_variables()) return true;
    for (int value = 0; value < csp->domain_sizes[var]; ++value) {
      ++nodes;
      GHD_COUNT(kCspNodes);
      if (!budget->Tick()) return false;
      assignment[var] = value;
      if (Consistent(var) && Recurse(var + 1)) return true;
      if (budget->Stopped()) return false;
    }
    assignment[var] = -1;
    return false;
  }
};

}  // namespace

BacktrackingResult SolveBacktracking(const Csp& csp,
                                     const BacktrackingOptions& options) {
  Budget local_budget(/*deadline_seconds=*/0, options.node_budget);
  Budget* budget = options.budget != nullptr ? options.budget : &local_budget;

  Search search;
  search.csp = &csp;
  search.budget = budget;
  search.assignment.assign(csp.num_variables(), -1);
  search.constraints_of.assign(csp.num_variables(), {});
  for (size_t c = 0; c < csp.constraints.size(); ++c) {
    for (int v : csp.constraints[c].scope()) {
      search.constraints_of[v].push_back(static_cast<int>(c));
    }
  }
  const bool found = search.Recurse(0);
  BacktrackingResult result;
  result.nodes_visited = search.nodes;
  // A verified solution stands even if the budget fired during the search;
  // truncation can only make a "no solution" answer untrustworthy.
  result.decided = found || !budget->Stopped();
  if (found) {
    GHD_CHECK(csp.IsSolution(search.assignment));
    result.solution = search.assignment;
  }
  result.outcome = budget->MakeOutcome();
  result.outcome.ticks = search.nodes;
  result.outcome.complete = result.decided;
  return result;
}

}  // namespace ghd
