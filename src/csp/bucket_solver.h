// Bucket elimination / adaptive consistency for CSPs (Dechter): solve along
// an elimination ordering by joining each bucket's relations and projecting
// the eliminated variable away. The intermediate relation sizes are bounded
// by d^(w+1) for ordering width w — the operational face of "bounded width
// implies tractable".
#ifndef GHD_CSP_BUCKET_SOLVER_H_
#define GHD_CSP_BUCKET_SOLVER_H_

#include <optional>
#include <vector>

#include "csp/csp.h"
#include "util/resource_governor.h"

namespace ghd {

/// Counters reported by the bucket solver. With a budget attached, `decided`
/// is false when the solve was truncated — then a nullopt return means
/// "unknown", not "unsatisfiable". Unbudgeted solves are always decided.
struct BucketSolveStats {
  long joins = 0;
  long max_relation_size = 0;
  bool decided = true;
  Outcome outcome;
};

/// Solves `csp` by bucket elimination along `ordering` (a permutation of the
/// variables; the first entry is eliminated first). Returns one solution or
/// nullopt when unsatisfiable (check stats->decided under a budget). A
/// non-null `budget` is ticked once per join and charged for each
/// intermediate relation's tuple storage.
std::optional<std::vector<int>> SolveByBucketElimination(
    const Csp& csp, const std::vector<int>& ordering,
    BucketSolveStats* stats = nullptr, Budget* budget = nullptr);

/// Convenience: uses a min-fill ordering of the constraint hypergraph.
std::optional<std::vector<int>> SolveByBucketElimination(
    const Csp& csp, BucketSolveStats* stats = nullptr,
    Budget* budget = nullptr);

}  // namespace ghd

#endif  // GHD_CSP_BUCKET_SOLVER_H_
