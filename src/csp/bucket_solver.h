// Bucket elimination / adaptive consistency for CSPs (Dechter): solve along
// an elimination ordering by joining each bucket's relations and projecting
// the eliminated variable away. The intermediate relation sizes are bounded
// by d^(w+1) for ordering width w — the operational face of "bounded width
// implies tractable".
#ifndef GHD_CSP_BUCKET_SOLVER_H_
#define GHD_CSP_BUCKET_SOLVER_H_

#include <optional>
#include <vector>

#include "csp/csp.h"

namespace ghd {

/// Counters reported by the bucket solver.
struct BucketSolveStats {
  long joins = 0;
  long max_relation_size = 0;
};

/// Solves `csp` by bucket elimination along `ordering` (a permutation of the
/// variables; the first entry is eliminated first). Returns one solution or
/// nullopt when unsatisfiable.
std::optional<std::vector<int>> SolveByBucketElimination(
    const Csp& csp, const std::vector<int>& ordering,
    BucketSolveStats* stats = nullptr);

/// Convenience: uses a min-fill ordering of the constraint hypergraph.
std::optional<std::vector<int>> SolveByBucketElimination(
    const Csp& csp, BucketSolveStats* stats = nullptr);

}  // namespace ghd

#endif  // GHD_CSP_BUCKET_SOLVER_H_
