#include "csp/relation.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"

namespace ghd {
namespace {

// FNV-1a over an int vector (hash-join keys).
struct IntVectorHash {
  size_t operator()(const std::vector<int>& v) const {
    uint64_t h = 14695981039346656037ull;
    for (int x : v) {
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(x));
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

// Positions in `scope` of the variables shared with `other_scope`, plus the
// matching positions in other_scope, aligned pairwise.
void SharedPositions(const std::vector<int>& scope,
                     const std::vector<int>& other_scope,
                     std::vector<int>* here, std::vector<int>* there) {
  for (size_t i = 0; i < scope.size(); ++i) {
    for (size_t j = 0; j < other_scope.size(); ++j) {
      if (scope[i] == other_scope[j]) {
        here->push_back(static_cast<int>(i));
        there->push_back(static_cast<int>(j));
      }
    }
  }
}

std::vector<int> KeyOf(const std::vector<int>& tuple,
                       const std::vector<int>& positions) {
  std::vector<int> key;
  key.reserve(positions.size());
  for (int p : positions) key.push_back(tuple[p]);
  return key;
}

}  // namespace

Relation::Relation(std::vector<int> scope) : scope_(std::move(scope)) {
  for (size_t i = 0; i < scope_.size(); ++i) {
    for (size_t j = i + 1; j < scope_.size(); ++j) {
      GHD_CHECK(scope_[i] != scope_[j]);
    }
  }
}

int Relation::PositionOf(int var) const {
  for (size_t i = 0; i < scope_.size(); ++i) {
    if (scope_[i] == var) return static_cast<int>(i);
  }
  return -1;
}

void Relation::AddTuple(std::vector<int> tuple) {
  GHD_CHECK(tuple.size() == scope_.size());
  tuples_.push_back(std::move(tuple));
}

Relation Relation::NaturalJoin(const Relation& a, const Relation& b) {
  std::vector<int> shared_a, shared_b;
  SharedPositions(a.scope_, b.scope_, &shared_a, &shared_b);
  // Output scope: a's scope followed by b's non-shared variables.
  std::vector<int> out_scope = a.scope_;
  std::vector<int> b_extra_positions;
  for (size_t j = 0; j < b.scope_.size(); ++j) {
    if (a.PositionOf(b.scope_[j]) < 0) {
      out_scope.push_back(b.scope_[j]);
      b_extra_positions.push_back(static_cast<int>(j));
    }
  }
  Relation out(std::move(out_scope));
  // Hash b on the shared key, probe with a.
  std::unordered_map<std::vector<int>, std::vector<int>, IntVectorHash> index;
  for (int t = 0; t < b.size(); ++t) {
    index[KeyOf(b.tuples_[t], shared_b)].push_back(t);
  }
  for (const auto& ta : a.tuples_) {
    auto it = index.find(KeyOf(ta, shared_a));
    if (it == index.end()) continue;
    for (int t : it->second) {
      std::vector<int> combined = ta;
      for (int p : b_extra_positions) combined.push_back(b.tuples_[t][p]);
      out.tuples_.push_back(std::move(combined));
    }
  }
  return out;
}

Relation Relation::SemijoinWith(const Relation& other) const {
  std::vector<int> here, there;
  SharedPositions(scope_, other.scope_, &here, &there);
  Relation out(scope_);
  std::unordered_set<std::vector<int>, IntVectorHash> keys;
  for (const auto& t : other.tuples_) keys.insert(KeyOf(t, there));
  for (const auto& t : tuples_) {
    if (keys.count(KeyOf(t, here)) != 0) out.tuples_.push_back(t);
  }
  return out;
}

Relation Relation::ProjectOnto(const std::vector<int>& vars) const {
  std::vector<int> positions;
  positions.reserve(vars.size());
  for (int v : vars) {
    const int p = PositionOf(v);
    GHD_CHECK(p >= 0);
    positions.push_back(p);
  }
  Relation out(vars);
  std::unordered_set<std::vector<int>, IntVectorHash> seen;
  for (const auto& t : tuples_) {
    std::vector<int> projected = KeyOf(t, positions);
    if (seen.insert(projected).second) out.tuples_.push_back(std::move(projected));
  }
  return out;
}

bool Relation::HasTupleConsistentWith(
    const std::vector<int>& assignment) const {
  return FindTupleConsistentWith(assignment) != nullptr;
}

const std::vector<int>* Relation::FindTupleConsistentWith(
    const std::vector<int>& assignment) const {
  for (const auto& t : tuples_) {
    bool ok = true;
    for (size_t i = 0; i < scope_.size() && ok; ++i) {
      const int assigned = assignment[scope_[i]];
      if (assigned >= 0 && assigned != t[i]) ok = false;
    }
    if (ok) return &t;
  }
  return nullptr;
}

void Relation::Deduplicate() {
  std::unordered_set<std::vector<int>, IntVectorHash> seen;
  std::vector<std::vector<int>> unique;
  unique.reserve(tuples_.size());
  for (auto& t : tuples_) {
    if (seen.insert(t).second) unique.push_back(std::move(t));
  }
  tuples_ = std::move(unique);
}

}  // namespace ghd
