// Yannakakis' acyclic-solving algorithm over join trees: a bottom-up
// semijoin pass (detects inconsistency), a top-down semijoin pass, then
// backtrack-free top-down extraction of one solution. Runs in time
// polynomial in the join tree size — which a width-k decomposition bounds
// by |instance|^k — realizing the tractability of bounded-ghw CSP classes.
#ifndef GHD_CSP_YANNAKAKIS_H_
#define GHD_CSP_YANNAKAKIS_H_

#include <optional>
#include <vector>

#include "core/ghd.h"
#include "csp/csp.h"
#include "csp/join_tree.h"

namespace ghd {

/// Counters reported by the acyclic solver.
struct AcyclicSolveStats {
  long semijoins = 0;
  long max_relation_size = 0;
};

/// Solves the acyclic instance: one complete assignment of the CSP, or
/// nullopt when unsatisfiable. Variables in no relation get value 0.
std::optional<std::vector<int>> SolveAcyclic(const Csp& csp, JoinTree jt,
                                             AcyclicSolveStats* stats = nullptr);

/// End-to-end: build the join tree from a decomposition of the constraint
/// hypergraph, then solve. The returned assignment always satisfies the CSP
/// (checked); nullopt means unsatisfiable.
std::optional<std::vector<int>> SolveViaDecomposition(
    const Csp& csp, const GeneralizedHypertreeDecomposition& ghd,
    AcyclicSolveStats* stats = nullptr);

}  // namespace ghd

#endif  // GHD_CSP_YANNAKAKIS_H_
