#include "csp/enumerate.h"

#include "util/check.h"

namespace ghd {
namespace {

struct Enumerator {
  const Csp* csp;
  const JoinTree* jt;
  const std::vector<int>* order;
  long limit;
  std::vector<int> assignment;
  std::vector<std::vector<int>> out;

  bool Full() const {
    return limit > 0 && static_cast<long>(out.size()) >= limit;
  }

  void Recurse(size_t depth) {
    if (Full()) return;
    if (depth == order->size()) {
      std::vector<int> solution = assignment;
      for (int v = 0; v < csp->num_variables(); ++v) {
        if (solution[v] < 0) solution[v] = 0;
      }
      GHD_CHECK(csp->IsSolution(solution));
      out.push_back(std::move(solution));
      return;
    }
    const Relation& r = jt->relations[(*order)[depth]];
    if (r.arity() == 0) {  // "true" node
      Recurse(depth + 1);
      return;
    }
    for (const auto& tuple : r.tuples()) {
      bool consistent = true;
      for (int i = 0; i < r.arity() && consistent; ++i) {
        const int assigned = assignment[r.scope()[i]];
        if (assigned >= 0 && assigned != tuple[i]) consistent = false;
      }
      if (!consistent) continue;
      // Assign, remembering which variables this node newly bound.
      std::vector<int> newly_bound;
      for (int i = 0; i < r.arity(); ++i) {
        const int var = r.scope()[i];
        if (assignment[var] < 0) {
          assignment[var] = tuple[i];
          newly_bound.push_back(var);
        }
      }
      Recurse(depth + 1);
      for (int var : newly_bound) assignment[var] = -1;
      if (Full()) return;
    }
  }
};

}  // namespace

std::vector<std::vector<int>> EnumerateAcyclicSolutions(const Csp& csp,
                                                        JoinTree jt,
                                                        long limit) {
  if (jt.num_nodes() == 0) return {};
  // Orient at node 0 (BFS), then run the full reduction exactly as the
  // single-solution solver does.
  const int t = jt.num_nodes();
  std::vector<std::vector<int>> adj(t);
  for (const auto& [a, b] : jt.edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<int> parent(t, -2), order;
  order.push_back(0);
  parent[0] = -1;
  for (size_t i = 0; i < order.size(); ++i) {
    for (int q : adj[order[i]]) {
      if (parent[q] == -2) {
        parent[q] = order[i];
        order.push_back(q);
      }
    }
  }
  GHD_CHECK(static_cast<int>(order.size()) == t);
  for (int i = t - 1; i >= 1; --i) {
    const int node = order[i];
    jt.relations[parent[node]] =
        jt.relations[parent[node]].SemijoinWith(jt.relations[node]);
    if (jt.relations[parent[node]].empty()) return {};
  }
  if (jt.relations[order[0]].empty()) return {};
  for (size_t i = 1; i < order.size(); ++i) {
    const int node = order[i];
    jt.relations[node] =
        jt.relations[node].SemijoinWith(jt.relations[parent[node]]);
  }

  Enumerator e;
  e.csp = &csp;
  e.jt = &jt;
  e.order = &order;
  e.limit = limit;
  e.assignment.assign(csp.num_variables(), -1);
  e.Recurse(0);
  return std::move(e.out);
}

std::vector<std::vector<int>> EnumerateSolutionsViaDecomposition(
    const Csp& csp, const GeneralizedHypertreeDecomposition& ghd,
    long limit) {
  Result<JoinTree> jt = BuildJoinTree(csp, ghd);
  GHD_CHECK(jt.ok());
  return EnumerateAcyclicSolutions(csp, std::move(jt).value(), limit);
}

long CountAcyclicSolutions(const Csp& csp, JoinTree jt) {
  (void)csp;  // kept for API symmetry with the enumerator
  if (jt.num_nodes() == 0) return 0;
  for (Relation& r : jt.relations) r.Deduplicate();
  const int t = jt.num_nodes();
  std::vector<std::vector<int>> adj(t);
  for (const auto& [a, b] : jt.edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<int> parent(t, -2), order;
  order.push_back(0);
  parent[0] = -1;
  for (size_t i = 0; i < order.size(); ++i) {
    for (int q : adj[order[i]]) {
      if (parent[q] == -2) {
        parent[q] = order[i];
        order.push_back(q);
      }
    }
  }
  GHD_CHECK(static_cast<int>(order.size()) == t);
  // Full reduction first, so dangling tuples don't inflate the products.
  for (int i = t - 1; i >= 1; --i) {
    const int node = order[i];
    jt.relations[parent[node]] =
        jt.relations[parent[node]].SemijoinWith(jt.relations[node]);
    if (jt.relations[parent[node]].empty()) return 0;
  }
  if (jt.relations[order[0]].empty()) return 0;
  for (size_t i = 1; i < order.size(); ++i) {
    const int node = order[i];
    jt.relations[node] =
        jt.relations[node].SemijoinWith(jt.relations[parent[node]]);
  }

  // Product-sum DP, children before parents: each solution corresponds to a
  // unique edge-compatible tuple selection (connectedness makes pairwise
  // agreement along tree edges globally consistent).
  std::vector<std::vector<__int128>> count(t);
  for (int i = t - 1; i >= 0; --i) {
    const int node = order[i];
    const Relation& r = jt.relations[node];
    const int rows = std::max(1, r.size());
    count[node].assign(rows, 1);
    if (r.size() == 0) continue;  // arity-0 "true" node contributes factor 1
    for (int q : adj[node]) {
      if (parent[q] != node) continue;
      const Relation& child = jt.relations[q];
      // Shared variable positions between node and child scopes.
      std::vector<std::pair<int, int>> shared;
      for (int p = 0; p < r.arity(); ++p) {
        const int cp = child.PositionOf(r.scope()[p]);
        if (cp >= 0) shared.emplace_back(p, cp);
      }
      for (int row = 0; row < r.size(); ++row) {
        __int128 sum = 0;
        for (int crow = 0; crow < child.size(); ++crow) {
          bool compatible = true;
          for (const auto& [p, cp] : shared) {
            if (r.tuples()[row][p] != child.tuples()[crow][cp]) {
              compatible = false;
              break;
            }
          }
          if (compatible) sum += count[q][crow];
        }
        count[node][row] *= sum;
        GHD_CHECK(count[node][row] <= INT64_MAX);
      }
    }
  }
  __int128 total = 0;
  const int root = order[0];
  const int root_rows =
      jt.relations[root].size() == 0 ? 1 : jt.relations[root].size();
  for (int row = 0; row < root_rows; ++row) total += count[root][row];
  GHD_CHECK(total <= INT64_MAX);
  return static_cast<long>(total);
}

long CountSolutionsViaDecomposition(
    const Csp& csp, const GeneralizedHypertreeDecomposition& ghd) {
  Result<JoinTree> jt = BuildJoinTree(csp, ghd);
  GHD_CHECK(jt.ok());
  return CountAcyclicSolutions(csp, std::move(jt).value());
}

}  // namespace ghd
