#include "htd/hypertree_decomposition.h"

#include <vector>

namespace ghd {
namespace {

// Computes, for the tree rooted at `root`, the union of bags in each node's
// subtree via iterative post-order.
std::vector<VertexSet> SubtreeBagUnions(
    const GeneralizedHypertreeDecomposition& ghd, int root, Status* status) {
  const int t = ghd.num_nodes();
  std::vector<std::vector<int>> adj(t);
  for (const auto& [a, b] : ghd.tree_edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<int> parent(t, -2);
  std::vector<int> order;
  order.reserve(t);
  order.push_back(root);
  parent[root] = -1;
  for (size_t i = 0; i < order.size(); ++i) {
    const int p = order[i];
    for (int q : adj[p]) {
      if (parent[q] == -2) {
        parent[q] = p;
        order.push_back(q);
      }
    }
  }
  if (static_cast<int>(order.size()) != t) {
    *status = Status::InvalidArgument("tree is not connected from the root");
    return {};
  }
  std::vector<VertexSet> subtree(ghd.bags);
  for (int i = t - 1; i >= 1; --i) {
    const int p = order[i];
    subtree[parent[p]] |= subtree[p];
  }
  return subtree;
}

}  // namespace

Status ValidateSpecialCondition(const Hypergraph& h,
                                const GeneralizedHypertreeDecomposition& ghd,
                                int root) {
  if (ghd.num_nodes() == 0) return Status::InvalidArgument("empty decomposition");
  if (root < 0 || root >= ghd.num_nodes()) {
    return Status::InvalidArgument("root out of range");
  }
  Status status = Status::Ok();
  const std::vector<VertexSet> subtree = SubtreeBagUnions(ghd, root, &status);
  if (!status.ok()) return status;
  for (int p = 0; p < ghd.num_nodes(); ++p) {
    VertexSet lambda_vars(h.num_vertices());
    for (int e : ghd.guards[p]) lambda_vars |= h.edge(e);
    VertexSet violating = lambda_vars;
    violating &= subtree[p];
    violating -= ghd.bags[p];
    if (!violating.Empty()) {
      return Status::InvalidArgument(
          "special condition violated at node " + std::to_string(p) +
          ": guard variables " + violating.ToString() +
          " reappear below without being in χ");
    }
  }
  return Status::Ok();
}

Status ValidateHypertreeDecomposition(
    const Hypergraph& h, const GeneralizedHypertreeDecomposition& ghd,
    int root) {
  Status basic = ghd.Validate(h);
  if (!basic.ok()) return basic;
  return ValidateSpecialCondition(h, ghd, root);
}

}  // namespace ghd
