// Hypertree decompositions proper: a GHD satisfying the descendant ("special")
// condition — for every node p, var(λ(p)) ∩ χ(T_p) ⊆ χ(p), where T_p is the
// subtree rooted at p. Dropping this condition is exactly what turns hw into
// ghw; keeping it is what makes hw polynomially recognizable. The validator
// here certifies that det-k-decomp's normal-form output really is a hypertree
// decomposition, not merely a GHD.
#ifndef GHD_HTD_HYPERTREE_DECOMPOSITION_H_
#define GHD_HTD_HYPERTREE_DECOMPOSITION_H_

#include "core/ghd.h"
#include "hypergraph/hypergraph.h"
#include "util/status.h"

namespace ghd {

/// Checks the special condition of hypertree decompositions on `ghd`, rooted
/// at node `root`: var(λ(p)) ∩ χ(T_p) ⊆ χ(p) for every node p. The basic GHD
/// conditions must already hold (call ghd.Validate first).
Status ValidateSpecialCondition(const Hypergraph& h,
                                const GeneralizedHypertreeDecomposition& ghd,
                                int root = 0);

/// Full hypertree-decomposition check: GHD conditions + special condition.
Status ValidateHypertreeDecomposition(
    const Hypergraph& h, const GeneralizedHypertreeDecomposition& ghd,
    int root = 0);

}  // namespace ghd

#endif  // GHD_HTD_HYPERTREE_DECOMPOSITION_H_
