#include "htd/det_k_decomp.h"

#include <algorithm>
#include <string>

#include "core/ghw_lower.h"
#include "obs/obs.h"

namespace ghd {

KDeciderResult HypertreeWidthAtMost(const Hypergraph& h, int k,
                                    const KDeciderOptions& options) {
  return DecideWidthK(h, OriginalEdgesFamily(h), k, options);
}

HypertreeWidthResult HypertreeWidth(const Hypergraph& h, int max_k,
                                    const KDeciderOptions& options) {
  HypertreeWidthResult result;
  if (h.num_edges() == 0) {
    result.exact = true;
    result.width = 0;
    return result;
  }
  if (max_k <= 0) max_k = h.num_edges();
  // ghw <= hw, so a GHW lower bound starts the iteration.
  const int start = std::max(1, GhwLowerBound(h));
  // The iteration is a textbook k-ladder: one context shares the interner,
  // cover index, and the monotone positive memo across every rung, so states
  // proven decomposable at width k are free at k+1.
  const GuardFamily family = OriginalEdgesFamily(h);
  KLadderContext ladder(h, family, options.num_threads);
  for (int k = start; k <= max_k; ++k) {
    GHD_COUNT(kDetKIterations);
    GHD_SPAN_VAR(span, "htd", "det-k-decomp");
    span.SetArg("k", k);
    GHD_BOARD_SET(kWidthK, k);
    GHD_ATTR_SCOPE(attr, "k=" + std::to_string(k));
    KDeciderResult r = DecideWidthK(h, family, k, options, &ladder);
    result.states_visited += r.states_visited;
    result.outcome = r.outcome;
    result.outcome.ticks = result.states_visited;
    if (!r.decided) return result;  // exact stays false
    if (r.exists) {
      result.width = k;
      result.exact = true;
      result.decomposition = std::move(r.decomposition);
      return result;
    }
    result.last_failed_k = k;
  }
  return result;
}

}  // namespace ghd
