#include "htd/det_k_decomp.h"

#include <algorithm>

#include "core/ghw_lower.h"
#include "obs/obs.h"

namespace ghd {

KDeciderResult HypertreeWidthAtMost(const Hypergraph& h, int k,
                                    const KDeciderOptions& options) {
  return DecideWidthK(h, OriginalEdgesFamily(h), k, options);
}

HypertreeWidthResult HypertreeWidth(const Hypergraph& h, int max_k,
                                    const KDeciderOptions& options) {
  HypertreeWidthResult result;
  if (h.num_edges() == 0) {
    result.exact = true;
    result.width = 0;
    return result;
  }
  if (max_k <= 0) max_k = h.num_edges();
  // ghw <= hw, so a GHW lower bound starts the iteration.
  const int start = std::max(1, GhwLowerBound(h));
  for (int k = start; k <= max_k; ++k) {
    GHD_COUNT(kDetKIterations);
    GHD_SPAN_VAR(span, "htd", "det-k-decomp");
    span.SetArg("k", k);
    KDeciderResult r = HypertreeWidthAtMost(h, k, options);
    result.states_visited += r.states_visited;
    result.outcome = r.outcome;
    result.outcome.ticks = result.states_visited;
    if (!r.decided) return result;  // exact stays false
    if (r.exists) {
      result.width = k;
      result.exact = true;
      result.decomposition = std::move(r.decomposition);
      return result;
    }
    result.last_failed_k = k;
  }
  return result;
}

}  // namespace ghd
