// Hypertree width via the det-k-decomp normal-form search (Gottlob & Samer):
// for fixed k, hw(H) <= k is polynomial-time decidable. Together with the
// paper's inequality ghw <= hw <= 3*ghw + 1, this module is the polynomial
// constant-factor approximation engine for generalized hypertree width.
#ifndef GHD_HTD_DET_K_DECOMP_H_
#define GHD_HTD_DET_K_DECOMP_H_

#include "core/k_decider.h"
#include "hypergraph/hypergraph.h"

namespace ghd {

/// Decides hw(H) <= k. Positive results carry a validated decomposition of
/// width <= k (a GHD; the normal form guarantees it extends to a hypertree
/// decomposition satisfying the special condition).
KDeciderResult HypertreeWidthAtMost(const Hypergraph& h, int k,
                                    const KDeciderOptions& options = {});

/// Result of iterating k upward until hw is found.
struct HypertreeWidthResult {
  /// hw(H) when exact, otherwise meaningless.
  int width = 0;
  bool exact = false;
  /// Largest k with hw(H) > k established before stopping (lower bound - 1).
  int last_failed_k = 0;
  GeneralizedHypertreeDecomposition decomposition;
  long states_visited = 0;
  /// Why the iteration stopped; carried over from the last k-decider run.
  Outcome outcome;
};

/// Computes hw(H) by trying k = lb, lb+1, ..., max_k (max_k <= 0 means up to
/// the number of edges). Stops early on budget exhaustion with exact = false.
HypertreeWidthResult HypertreeWidth(const Hypergraph& h, int max_k = 0,
                                    const KDeciderOptions& options = {});

}  // namespace ghd

#endif  // GHD_HTD_DET_K_DECOMP_H_
