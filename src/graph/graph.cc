#include "graph/graph.h"

namespace ghd {

Graph::Graph(int num_vertices) : n_(num_vertices) {
  GHD_CHECK(num_vertices >= 0);
  adj_.assign(n_, VertexSet(n_));
}

int Graph::NumEdges() const {
  int twice = 0;
  for (const auto& a : adj_) twice += a.Count();
  return twice / 2;
}

void Graph::AddEdge(int u, int v) {
  GHD_DCHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
  if (u == v) return;
  adj_[u].Set(v);
  adj_[v].Set(u);
}

void Graph::RemoveEdge(int u, int v) {
  GHD_DCHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
  adj_[u].Reset(v);
  adj_[v].Reset(u);
}

bool Graph::IsClique(const VertexSet& s) const {
  bool clique = true;
  s.ForEach([&](int v) {
    if (!clique) return;
    // Every other member of s must be adjacent to v.
    VertexSet others = s;
    others.Reset(v);
    if (!others.IsSubsetOf(adj_[v])) clique = false;
  });
  return clique;
}

int Graph::MakeClique(const VertexSet& s) {
  int added = 0;
  std::vector<int> vs = s.ToVector();
  for (size_t i = 0; i < vs.size(); ++i) {
    for (size_t j = i + 1; j < vs.size(); ++j) {
      if (!HasEdge(vs[i], vs[j])) {
        AddEdge(vs[i], vs[j]);
        ++added;
      }
    }
  }
  return added;
}

int Graph::FillIn(const VertexSet& s) const {
  int missing = 0;
  std::vector<int> vs = s.ToVector();
  for (size_t i = 0; i < vs.size(); ++i) {
    for (size_t j = i + 1; j < vs.size(); ++j) {
      if (!HasEdge(vs[i], vs[j])) ++missing;
    }
  }
  return missing;
}

void Graph::EliminateVertex(int v) {
  MakeClique(adj_[v]);
  IsolateVertex(v);
}

void Graph::IsolateVertex(int v) {
  adj_[v].ForEach([&](int u) { adj_[u].Reset(v); });
  adj_[v].Clear();
}

void Graph::ContractEdge(int u, int v) {
  GHD_DCHECK(HasEdge(u, v));
  VertexSet nv = adj_[v];
  IsolateVertex(v);
  nv.Reset(u);
  nv.ForEach([&](int w) { AddEdge(u, w); });
}

bool Graph::IsSimplicial(int v) const { return IsClique(adj_[v]); }

bool Graph::IsAlmostSimplicial(int v) const {
  if (adj_[v].Empty()) return false;
  if (IsSimplicial(v)) return false;
  bool found = false;
  adj_[v].ForEach([&](int skip) {
    if (found) return;
    VertexSet rest = adj_[v];
    rest.Reset(skip);
    if (IsClique(rest)) found = true;
  });
  return found;
}

std::vector<VertexSet> Graph::ComponentsWithin(const VertexSet& within) const {
  std::vector<VertexSet> comps;
  VertexSet unseen = within;
  std::vector<int> stack;
  while (true) {
    int start = unseen.First();
    if (start < 0) break;
    VertexSet comp(n_);
    stack.assign(1, start);
    unseen.Reset(start);
    comp.Set(start);
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      VertexSet frontier = adj_[v];
      frontier &= unseen;
      frontier.ForEach([&](int u) {
        comp.Set(u);
        stack.push_back(u);
      });
      unseen -= frontier;
    }
    comps.push_back(std::move(comp));
  }
  return comps;
}

std::vector<VertexSet> Graph::Components() const {
  return ComponentsWithin(VertexSet::Full(n_));
}

VertexSet Graph::NonIsolatedVertices() const {
  VertexSet s(n_);
  for (int v = 0; v < n_; ++v) {
    if (!adj_[v].Empty()) s.Set(v);
  }
  return s;
}

}  // namespace ghd
