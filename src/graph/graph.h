// Undirected simple graph with bitset adjacency. Serves as the primal-graph
// substrate for tree decompositions: vertex elimination, fill-in computation,
// simplicial tests, contractions for lower bounds.
#ifndef GHD_GRAPH_GRAPH_H_
#define GHD_GRAPH_GRAPH_H_

#include <vector>

#include "util/bitset.h"

namespace ghd {

/// Undirected simple graph over vertices {0, ..., n-1}.
class Graph {
 public:
  /// Graph with `num_vertices` vertices and no edges.
  explicit Graph(int num_vertices);

  int num_vertices() const { return n_; }
  /// Number of (undirected) edges.
  int NumEdges() const;

  /// Adds edge {u, v}; self-loops are ignored, duplicates are idempotent.
  void AddEdge(int u, int v);
  void RemoveEdge(int u, int v);
  bool HasEdge(int u, int v) const {
    GHD_DCHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
    return adj_[u].Test(v);
  }

  /// Neighborhood of v as a bitset (does not contain v).
  const VertexSet& Neighbors(int v) const { return adj_[v]; }
  int Degree(int v) const { return adj_[v].Count(); }

  /// True when every pair of vertices in `s` is adjacent.
  bool IsClique(const VertexSet& s) const;
  /// Adds all edges among `s`; returns the number of edges added (fill-in).
  int MakeClique(const VertexSet& s);
  /// Number of edges that MakeClique(s) would add, without mutating.
  int FillIn(const VertexSet& s) const;

  /// Number of fill edges created by eliminating v (clique on N(v)).
  int EliminationFill(int v) const { return FillIn(adj_[v]); }

  /// Eliminates v: turns N(v) into a clique, then removes all edges at v.
  /// The vertex id stays valid but becomes isolated.
  void EliminateVertex(int v);

  /// Removes all edges incident to v without adding fill.
  void IsolateVertex(int v);

  /// Contracts edge {u, v} into u: N(u) |= N(v), then isolates v.
  /// Used by treewidth lower bounds (minors).
  void ContractEdge(int u, int v);

  /// True when N(v) is a clique.
  bool IsSimplicial(int v) const;
  /// True when N(v) minus one vertex is a clique (and v has a neighbor).
  bool IsAlmostSimplicial(int v) const;

  /// Connected components restricted to `within`; each component is a bitset.
  std::vector<VertexSet> ComponentsWithin(const VertexSet& within) const;
  /// Connected components of the whole graph.
  std::vector<VertexSet> Components() const;

  /// Vertices with at least one incident edge.
  VertexSet NonIsolatedVertices() const;

 private:
  int n_;
  std::vector<VertexSet> adj_;
};

}  // namespace ghd

#endif  // GHD_GRAPH_GRAPH_H_
