#include "graph/dimacs.h"

#include <fstream>
#include <optional>
#include <sstream>

#include "util/strings.h"

namespace ghd {

Result<Graph> ParseDimacsGraph(const std::string& content) {
  std::optional<Graph> graph;
  int declared_edges = 0;
  int seen_edges = 0;
  int line_no = 0;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view s = TrimWhitespace(line);
    if (s.empty() || s[0] == 'c') continue;
    std::vector<std::string> tok = SplitTrimmed(s, ' ');
    auto err = [&](const std::string& what) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " + what);
    };
    if (tok[0] == "p") {
      if (graph.has_value()) return err("duplicate problem line");
      if (tok.size() != 4 || (tok[1] != "edge" && tok[1] != "col")) {
        return err("expected 'p edge N M'");
      }
      int n = ParseNonNegativeInt(tok[2]);
      declared_edges = ParseNonNegativeInt(tok[3]);
      if (n < 0 || declared_edges < 0) return err("bad problem line counts");
      graph.emplace(n);
    } else if (tok[0] == "e") {
      if (!graph.has_value()) return err("edge line before problem line");
      if (tok.size() != 3) return err("expected 'e u v'");
      int u = ParseNonNegativeInt(tok[1]);
      int v = ParseNonNegativeInt(tok[2]);
      if (u < 1 || v < 1 || u > graph->num_vertices() ||
          v > graph->num_vertices()) {
        return err("vertex id out of range");
      }
      graph->AddEdge(u - 1, v - 1);
      ++seen_edges;
    } else if (tok[0] == "n") {
      // Vertex-weight lines appear in some coloring files; ignored.
    } else {
      return err("unknown directive '" + tok[0] + "'");
    }
  }
  if (!graph.has_value()) return Status::ParseError("missing problem line");
  (void)declared_edges;  // Many published files misstate M; trust edge lines.
  (void)seen_edges;
  return *std::move(graph);
}

Result<Graph> LoadDimacsGraph(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return ParseDimacsGraph(buffer.str());
}

}  // namespace ghd
