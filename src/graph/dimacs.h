// DIMACS graph-coloring (.col) format parser — the format of the classic
// treewidth benchmark graphs (anna, david, queenN_N, myciel, ...).
#ifndef GHD_GRAPH_DIMACS_H_
#define GHD_GRAPH_DIMACS_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace ghd {

/// Parses DIMACS .col content: "c" comment lines, one "p edge N M" problem
/// line, and "e u v" edge lines with 1-based vertex ids.
Result<Graph> ParseDimacsGraph(const std::string& content);

/// Reads and parses a DIMACS .col file from disk.
Result<Graph> LoadDimacsGraph(const std::string& path);

}  // namespace ghd

#endif  // GHD_GRAPH_DIMACS_H_
